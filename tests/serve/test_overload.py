"""Open-loop traces, the degradation ladder, hysteresis, shedding.

The overload-survival layer (docs/overload.md): seeded arrival
traces must be pure functions of their config, the ladder must never
touch interactive work, shedding must leave the device pool drained
(including mid-tick on the fused path), and every request must end
in an explicit terminal outcome.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    COMPLETED,
    PRIORITY_CLASSES,
    SHED,
    TERMINAL_STATUSES,
    AdversarialBurst,
    DiurnalCycle,
    FlashCrowd,
    HysteresisController,
    OverloadPolicy,
    SearchService,
    StormConfig,
    TraceConfig,
    WorkloadConfig,
    assert_explicit_outcomes,
    make_trace,
    run_storm,
)
from repro.serve.overload import _mix_cdf
from repro.serve.storm import SilentOutcomeError


def small_trace(**overrides) -> TraceConfig:
    """A trace small enough to storm in well under a second."""
    defaults = dict(
        base_rate=150.0,
        horizon_s=0.2,
        seed=42,
        components=(FlashCrowd(0.05, 0.1, 3.0),),
        class_deadline_s=(
            ("interactive", 0.05),
            ("standard", 0.2),
            ("batch", 0.5),
        ),
        workload=WorkloadConfig(
            seed=42, engines=("sequential",), budget_scale=0.25
        ),
    )
    defaults.update(overrides)
    return TraceConfig(**defaults)


# -- the trace generator -----------------------------------------------------


class TestTrace:
    def test_same_seed_same_trace_bit_identically(self):
        cfg = small_trace()
        first = make_trace(cfg)
        again = make_trace(cfg)
        assert [
            (r.request_id, r.arrival_s, r.priority, r.deadline_s,
             r.game, r.engine, r.budget_s, r.seed)
            for r in first
        ] == [
            (r.request_id, r.arrival_s, r.priority, r.deadline_s,
             r.game, r.engine, r.budget_s, r.seed)
            for r in again
        ]

    def test_different_seed_different_arrivals(self):
        a = make_trace(small_trace(seed=1))
        b = make_trace(small_trace(seed=2))
        assert [r.arrival_s for r in a] != [r.arrival_s for r in b]

    def test_arrivals_open_loop_and_in_horizon(self):
        cfg = small_trace()
        trace = make_trace(cfg)
        assert trace, "empty trace at 150 req/s over 0.2s"
        times = [r.arrival_s for r in trace]
        assert times == sorted(times)
        assert all(0.0 <= t < cfg.horizon_s for t in times)
        # Strictly increasing: no two arrivals share an instant.
        assert len(set(times)) == len(times)

    def test_request_fields_follow_the_config(self):
        cfg = small_trace()
        deadlines = dict(cfg.class_deadline_s)
        trace = make_trace(cfg)
        assert {r.priority for r in trace} <= set(PRIORITY_CLASSES)
        for r in trace:
            assert r.deadline_s == deadlines[r.priority]
            assert r.request_id.startswith("t")
            tenant = int(r.request_id[1:3])
            assert 0 <= tenant < cfg.n_tenants
        # Seeds differ per request (independent searches).
        seeds = [r.seed for r in trace]
        assert len(set(seeds)) == len(seeds)

    def test_flash_crowd_concentrates_arrivals(self):
        cfg = small_trace(
            base_rate=300.0,
            components=(FlashCrowd(0.05, 0.1, 5.0),),
        )
        trace = make_trace(cfg)
        inside = sum(
            1 for r in trace if 0.05 <= r.arrival_s < 0.15
        )
        # The window is half the horizon but 5x the rate: it must
        # hold well over half the arrivals.
        assert inside > len(trace) * 0.6

    def test_composes_with_position_skew(self):
        # The trace reuses WorkloadConfig's position machinery, so
        # Zipf-duplicate traffic composes with storms.
        cfg = small_trace(
            workload=WorkloadConfig(
                seed=42,
                engines=("sequential",),
                games=("tictactoe",),
                budget_scale=0.25,
                position_skew=1.2,
                position_pool=4,
            )
        )
        trace = make_trace(cfg)
        states = [str(r.state) for r in trace]
        assert len(set(states)) <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            small_trace(base_rate=0.0)
        with pytest.raises(ValueError):
            small_trace(horizon_s=-1.0)
        with pytest.raises(ValueError):
            small_trace(class_mix=(("warp", 1.0),))
        with pytest.raises(ValueError):
            small_trace(class_mix=(("batch", 0.0),))
        with pytest.raises(ValueError):
            small_trace(class_deadline_s=(("batch", 0.0),))
        with pytest.raises(ValueError):
            FlashCrowd(0.0, 0.0, 2.0)
        with pytest.raises(ValueError):
            DiurnalCycle(amplitude=1.0)
        with pytest.raises(ValueError):
            AdversarialBurst(1.0, 2.0, 3.0)


class TestTraceProperties:
    """Hypothesis properties of trace composition."""

    @given(
        base_rate=st.floats(1.0, 1e4),
        amplitude=st.floats(0.0, 0.99),
        multiplier=st.floats(0.01, 100.0),
        t=st.floats(0.0, 10.0),
    )
    def test_intensity_positive_and_under_envelope(
        self, base_rate, amplitude, multiplier, t
    ):
        cfg = TraceConfig(
            base_rate=base_rate,
            components=(
                DiurnalCycle(period_s=1.0, amplitude=amplitude),
                FlashCrowd(0.2, 0.3, multiplier),
            ),
        )
        assert cfg.intensity(t) > 0
        assert cfg.intensity(t) <= cfg.peak_rate() * (1 + 1e-9)

    @given(
        multipliers=st.lists(
            st.floats(0.1, 10.0), min_size=0, max_size=4
        ),
        t=st.floats(0.0, 1.0),
    )
    def test_components_compose_multiplicatively(
        self, multipliers, t
    ):
        components = tuple(
            FlashCrowd(0.0, 2.0, m) for m in multipliers
        )
        cfg = TraceConfig(base_rate=100.0, components=components)
        expected = 100.0
        for component in components:
            expected *= component.factor(t)
        assert cfg.intensity(t) == pytest.approx(expected)

    @given(
        weights=st.lists(
            st.floats(0.01, 10.0), min_size=1, max_size=3
        )
    )
    def test_mix_cdf_is_monotone_and_ends_at_one(self, weights):
        mix = tuple(
            (PRIORITY_CLASSES[i], w) for i, w in enumerate(weights)
        )
        names, cdf = _mix_cdf(mix)
        assert names == [name for name, _ in mix]
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))
        assert cdf[-1] == pytest.approx(1.0)

    @settings(max_examples=10, deadline=None)
    @given(
        period=st.floats(0.05, 0.5),
        duration_frac=st.floats(0.1, 1.0),
        phase=st.floats(0.0, 1.0),
    )
    def test_burst_train_peak_bounds_factor(
        self, period, duration_frac, phase
    ):
        burst = AdversarialBurst(
            period, period * duration_frac, 7.0, phase_s=phase
        )
        for i in range(50):
            t = i * 0.013
            assert 1.0 <= burst.factor(t) <= burst.peak()

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_any_seed_replays_identically(self, seed):
        cfg = small_trace(
            seed=seed, base_rate=80.0, horizon_s=0.1, components=()
        )
        assert [
            (r.request_id, r.arrival_s) for r in make_trace(cfg)
        ] == [
            (r.request_id, r.arrival_s) for r in make_trace(cfg)
        ]


# -- the degradation ladder --------------------------------------------------


class TestLadder:
    def test_rungs_never_touch_interactive(self):
        policy = OverloadPolicy()
        for level in range(5):
            assert (
                policy.budget_scale_for(level, "interactive") == 1.0
            )
            assert (
                policy.spec_for(level, "interactive", "root:8")
                == "root:8"
            )
            assert (
                policy.degrade_level_for(level, "interactive") == 0
            )
            assert not policy.sheds(level, "interactive")

    def test_rung_table_for_lower_classes(self):
        policy = OverloadPolicy(
            budget_factor=0.5, cheap_engine="sequential"
        )
        for priority in ("standard", "batch"):
            assert policy.budget_scale_for(0, priority) == 1.0
            assert policy.budget_scale_for(1, priority) == 0.5
            assert (
                policy.spec_for(1, priority, "root:8") == "root:8"
            )
            assert (
                policy.spec_for(2, priority, "root:8")
                == "sequential"
            )
            assert policy.degrade_level_for(4, priority) == 2
        assert not policy.sheds(2, "batch")
        assert policy.sheds(3, "batch")
        assert not policy.sheds(3, "standard")
        assert policy.sheds(4, "standard")
        assert policy.sheds(4, "batch")

    def test_coerce_and_validation(self):
        assert OverloadPolicy.coerce(None) is None
        assert OverloadPolicy.coerce(False) is None
        assert OverloadPolicy.coerce(True) == OverloadPolicy()
        assert (
            OverloadPolicy.coerce({"max_level": 2}).max_level == 2
        )
        policy = OverloadPolicy()
        assert OverloadPolicy.coerce(policy) is policy
        with pytest.raises(TypeError):
            OverloadPolicy.coerce("defended")
        with pytest.raises(ValueError):
            OverloadPolicy(queue_high=0.0)
        with pytest.raises(ValueError):
            OverloadPolicy(escalate_after=0)
        with pytest.raises(ValueError):
            OverloadPolicy(cheap_engine="warp_drive")


class TestHysteresis:
    def test_escalates_on_streak_not_on_spike(self):
        controller = HysteresisController(
            OverloadPolicy(escalate_after=3, deescalate_after=2)
        )
        assert controller.observe(2.0) == 0
        assert controller.observe(2.0) == 0
        # A calm sample resets the streak: no escalation.
        assert controller.observe(0.0) == 0
        assert controller.observe(2.0) == 0
        assert controller.observe(2.0) == 0
        assert controller.observe(2.0) == 1
        assert controller.escalations == 1
        assert controller.peak_level == 1

    def test_deescalates_slowly_and_only_when_calm(self):
        policy = OverloadPolicy(
            escalate_after=1, deescalate_after=3, release=0.4
        )
        controller = HysteresisController(policy)
        controller.observe(2.0)
        assert controller.level == 1
        # Mid-band pressure (between release and 1.0) holds level.
        for _ in range(10):
            assert controller.observe(0.7) == 1
        assert controller.observe(0.1) == 1
        assert controller.observe(0.1) == 1
        assert controller.observe(0.1) == 0
        assert controller.deescalations == 1

    def test_level_capped_at_max(self):
        controller = HysteresisController(
            OverloadPolicy(escalate_after=1, max_level=2)
        )
        for _ in range(10):
            controller.observe(5.0)
        assert controller.level == 2
        assert controller.peak_level == 2


class TestHysteresisProperties:
    """Property tests for the controller's boundary behaviour: any
    pressure history keeps the level in range, moves it one rung at
    a time, and never lets the mid-band (release < p < 1.0) change
    it -- the no-chatter guarantee hysteresis exists for."""

    @settings(max_examples=100, deadline=None)
    @given(
        pressures=st.lists(
            st.floats(min_value=0.0, max_value=4.0),
            min_size=1,
            max_size=100,
        ),
        escalate_after=st.integers(min_value=1, max_value=4),
        deescalate_after=st.integers(min_value=1, max_value=8),
        max_level=st.integers(min_value=1, max_value=4),
    )
    def test_level_bounded_and_moves_one_rung_at_a_time(
        self, pressures, escalate_after, deescalate_after, max_level
    ):
        controller = HysteresisController(
            OverloadPolicy(
                escalate_after=escalate_after,
                deescalate_after=deescalate_after,
                max_level=max_level,
            )
        )
        previous = controller.level
        for pressure in pressures:
            level = controller.observe(pressure)
            assert 0 <= level <= max_level
            assert abs(level - previous) <= 1
            previous = level
        assert controller.peak_level <= max_level
        assert controller.escalations >= controller.peak_level

    @settings(max_examples=100, deadline=None)
    @given(
        pressures=st.lists(
            st.floats(
                min_value=0.41,
                max_value=0.99,
                exclude_min=True,
            ),
            min_size=1,
            max_size=50,
        ),
        start_high=st.integers(min_value=0, max_value=5),
    )
    def test_mid_band_pressure_never_moves_the_level(
        self, pressures, start_high
    ):
        policy = OverloadPolicy(
            escalate_after=1, deescalate_after=1, release=0.4
        )
        controller = HysteresisController(policy)
        for _ in range(start_high):
            controller.observe(2.0)
        level = controller.level
        for pressure in pressures:
            assert controller.observe(pressure) == level

    @settings(max_examples=100, deadline=None)
    @given(
        threshold=st.sampled_from([0.4, 1.0]),
        n=st.integers(min_value=1, max_value=20),
    )
    def test_exact_thresholds_are_inclusive(self, threshold, n):
        """Pressure exactly at 1.0 escalates; exactly at release
        de-escalates -- the boundaries belong to the active side, so
        a plateau sitting on one cannot oscillate."""
        policy = OverloadPolicy(
            escalate_after=1, deescalate_after=1, release=0.4
        )
        controller = HysteresisController(policy)
        if threshold == 1.0:
            for i in range(n):
                assert controller.observe(1.0) == min(
                    i + 1, policy.max_level
                )
        else:
            controller.observe(2.0)
            assert controller.level == 1
            controller.observe(0.4)
            assert controller.level == 0
            # Further release-boundary samples stay at the floor.
            for _ in range(n):
                assert controller.observe(0.4) == 0

    @settings(max_examples=50, deadline=None)
    @given(
        pressures=st.lists(
            st.floats(min_value=0.0, max_value=4.0),
            min_size=1,
            max_size=60,
        )
    )
    def test_replay_is_deterministic(self, pressures):
        def drive():
            controller = HysteresisController(OverloadPolicy())
            return [controller.observe(p) for p in pressures]

        assert drive() == drive()


# -- shedding and lease accounting -------------------------------------------


def trace_requests(**overrides):
    return make_trace(small_trace(**overrides))


class TestShedding:
    def test_admission_sheds_lower_classes_at_high_level(self):
        service = SearchService(
            n_devices=1,
            max_active=4,
            # A de-escalation streak long enough to never fire keeps
            # the ladder pinned for the whole run.
            overload={"deescalate_after": 10**6},
        )
        # Pin the ladder at its top before any arrival.
        service.controller.level = 4
        service.submit_all(trace_requests())
        records = service.run()
        assert_explicit_outcomes(records)
        by_class = {}
        for r in records:
            by_class.setdefault(r.request.priority, []).append(r)
        assert all(
            r.status == SHED for r in by_class["standard"]
        )
        assert all(r.status == SHED for r in by_class["batch"])
        assert all(
            r.status != SHED for r in by_class["interactive"]
        )
        service.pool.assert_drained()

    def test_overloaded_storm_pool_drains_fused(self):
        # Shedding after admission -- including requests cancelled
        # between queueing and launch -- must resolve every lease.
        service = SearchService(
            n_devices=1,
            max_active=4,
            max_queue=8,
            overload=True,
            fusion=True,
        )
        service.submit_all(
            trace_requests(base_rate=400.0, horizon_s=0.15)
        )
        records = service.run()
        assert_explicit_outcomes(records)
        assert any(r.status == SHED for r in records)
        service.pool.assert_drained()
        assert service.report().shed > 0

    def test_overloaded_storm_pool_drains_fusion_admission(self):
        # The mid-tick fused admission path: doomed fused arrivals
        # are shed explicitly under pressure, and the generator pool
        # still drains.
        service = SearchService(
            n_devices=1,
            max_active=4,
            max_queue=8,
            overload=True,
            fusion=True,
            fusion_admission=True,
        )
        service.submit_all(
            trace_requests(base_rate=400.0, horizon_s=0.15)
        )
        records = service.run()
        assert_explicit_outcomes(records)
        service.pool.assert_drained()

    def test_full_queue_evicts_lower_class_for_higher(self):
        service = SearchService(
            n_devices=1,
            max_active=1,
            max_queue=1,
            # Eviction is admission-path logic, independent of the
            # ladder level: keep the controller at level 0 so the
            # shed pass never interferes.
            overload={"escalate_after": 10**6},
            enforce_deadlines=False,
        )
        from repro.serve import SearchRequest

        def req(i, priority, arrival):
            return SearchRequest(
                request_id=f"e{i}",
                game="tictactoe",
                engine="sequential",
                budget_s=0.002,
                seed=i,
                priority=priority,
                arrival_s=arrival,
            )

        # e0 occupies the slot; e1 (batch) queues; e2 (interactive)
        # finds the queue full and evicts e1 rather than bouncing.
        service.submit_all(
            [
                req(0, "standard", 0.0),
                req(1, "batch", 1e-5),
                req(2, "interactive", 2e-5),
            ]
        )
        records = {
            r.request.request_id: r for r in service.run()
        }
        assert records["e1"].status == SHED
        assert records["e2"].status == COMPLETED
        assert records["e0"].status == COMPLETED
        service.pool.assert_drained()

    def test_undefended_service_never_sheds(self):
        service = SearchService(
            n_devices=1, max_active=4, max_queue=8
        )
        service.submit_all(
            trace_requests(base_rate=400.0, horizon_s=0.15)
        )
        records = service.run()
        assert all(r.status != SHED for r in records)
        report = service.report()
        assert report.shed == 0
        assert report.peak_overload_level == 0
        service.pool.assert_drained()


# -- storm-level invariants --------------------------------------------------


class TestStormHarness:
    def test_storm_replays_bit_identically(self):
        cfg = StormConfig(
            trace=small_trace(),
            n_devices=1,
            max_active=4,
            overload=True,
        )

        def fingerprint(outcome):
            return [
                (
                    r.request.request_id,
                    r.status,
                    r.outcome,
                    r.latency_s,
                    None if r.result is None else r.result.move,
                )
                for r in outcome.records
            ]

        assert fingerprint(run_storm(cfg)) == fingerprint(
            run_storm(cfg)
        )

    def test_every_outcome_is_explicit_and_counted(self):
        outcome = run_storm(
            StormConfig(
                trace=small_trace(base_rate=300.0),
                n_devices=1,
                max_active=4,
                overload=True,
            )
        )
        assert len(outcome.records) == len(outcome.requests)
        assert all(
            r.status in TERMINAL_STATUSES for r in outcome.records
        )
        total = sum(
            s.met + s.degraded + s.shed + s.rejected + s.missed
            for s in outcome.per_class.values()
        )
        assert total == len(outcome.requests)

    def test_silent_outcome_raises(self):
        from repro.serve import RequestRecord

        trace = trace_requests()
        record = RequestRecord(request=trace[0])
        record.status = "running"
        with pytest.raises(SilentOutcomeError):
            assert_explicit_outcomes([record])
