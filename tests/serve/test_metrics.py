"""Tests for service metrics (repro.serve.metrics)."""

import pytest

from repro.serve import (
    COMPLETED,
    MISSED,
    REJECTED,
    RequestRecord,
    SearchRequest,
    percentile,
    summarize,
)


class TestPercentile:
    def test_nearest_rank_basics(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 95) == 4.0
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="100"):
            percentile([1.0], 150)


def record(i, status, arrival=0.0, start=None, finish=None):
    req = SearchRequest(
        request_id=f"r{i}",
        game="tictactoe",
        engine="sequential",
        budget_s=0.001,
        seed=i,
        arrival_s=arrival,
    )
    return RequestRecord(
        request=req, status=status, start_s=start, finish_s=finish
    )


class TestSummarize:
    def records(self):
        return [
            record(0, COMPLETED, start=0.0, finish=0.1),
            record(1, COMPLETED, start=0.05, finish=0.3),
            record(2, REJECTED),
            record(3, MISSED),
        ]

    def test_counts_by_status(self):
        report = summarize(self.records(), elapsed_s=0.3)
        assert report.offered == 4
        assert report.completed == 2
        assert report.rejected == 1
        assert report.missed == 1

    def test_latency_percentiles_from_completed_only(self):
        report = summarize(self.records(), elapsed_s=0.3)
        assert report.p50_latency_s == pytest.approx(0.1)
        assert report.p95_latency_s == pytest.approx(0.3)
        assert report.mean_latency_s == pytest.approx(0.2)

    def test_requests_per_s(self):
        report = summarize(self.records(), elapsed_s=0.5)
        assert report.requests_per_s == pytest.approx(4.0)
        empty = summarize([], elapsed_s=0.0)
        assert empty.requests_per_s == 0.0

    def test_render_lists_every_metric(self):
        report = summarize(
            self.records(),
            elapsed_s=0.3,
            kernel_launches=12,
            mean_lanes_per_launch=48.0,
            device_utilization={"gpu0": 0.5},
        )
        text = report.render()
        for needle in (
            "requests/s",
            "latency p95",
            "kernel launches",
            "gpu0 utilisation",
            "50%",
        ):
            assert needle in text
