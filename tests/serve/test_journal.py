"""Write-ahead journal and service crash-recovery tests."""

import json

import pytest

from repro.serve import (
    COMPLETED,
    JournalError,
    JournalWriter,
    SearchRequest,
    SearchService,
    ServiceCrash,
    read_journal,
)

BUDGET = 4e-4


def request(i, engine="sequential", **kwargs):
    defaults = dict(
        request_id=f"r{i}",
        game="tictactoe",
        engine=engine,
        budget_s=BUDGET,
        seed=100 + i,
    )
    defaults.update(kwargs)
    return SearchRequest(**defaults)


def mixed_requests():
    return [
        request(i, engine=eng)
        for i, eng in enumerate(
            ["sequential", "root:2", "tree:2@arena", "sequential@arena"]
        )
    ]


def crash_run(path, faults, checkpoint_every=5, reqs=None):
    """Run a journalled service into its planned crash."""
    service = SearchService(
        seed=5,
        n_devices=2,
        journal=path,
        checkpoint_every=checkpoint_every,
        faults=faults,
    )
    service.submit_all(reqs if reqs is not None else mixed_requests())
    with pytest.raises(ServiceCrash):
        service.run()
    return service


class TestJournalFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        writer = JournalWriter(path)
        reqs = mixed_requests()
        for req in reqs:
            writer.submit(req)
        writer.checkpoint("r1", 10, b"snapshot-bytes")
        writer.checkpoint("r1", 20, b"later-snapshot")
        writer.complete("r0", COMPLETED, None, 1.5)
        writer.close()

        state = read_journal(path)
        assert list(state.requests) == [r.request_id for r in reqs]
        assert state.requests["r2"] == reqs[2]
        # Latest checkpoint wins; completed requests drop theirs.
        assert state.checkpoints["r1"].iterations == 20
        assert state.checkpoints["r1"].snapshot_blob == b"later-snapshot"
        assert state.completions["r0"].status == COMPLETED
        assert state.completions["r0"].finish_s == 1.5
        assert state.incomplete == ["r1", "r2", "r3"]

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        writer = JournalWriter(path)
        writer.submit(request(0))
        writer.close()
        with open(path, "a") as fh:
            fh.write('{"type": "complete", "rid": "r0", "sta')

        state = read_journal(path)
        assert list(state.requests) == ["r0"]
        assert state.completions == {}

    def test_torn_middle_line_tolerated_and_counted(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        writer = JournalWriter(path)
        writer.submit(request(0))
        writer.close()
        lines = path.read_text().splitlines()
        lines.insert(1, '{"type": "subm')
        path.write_text("\n".join(lines) + "\n")
        state = read_journal(path)
        assert list(state.requests) == ["r0"]
        assert state.corrupt_records == 1

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "notes.jsonl"
        path.write_text(json.dumps({"type": "header"}) + "\n")
        with pytest.raises(JournalError, match="not a request journal"):
            read_journal(path)
        path.write_text("")
        with pytest.raises(JournalError, match="empty"):
            read_journal(path)

    def test_unknown_record_type_counted_corrupt(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        JournalWriter(path).close()
        with open(path, "a") as fh:
            fh.write(json.dumps({"type": "mystery", "rid": "r0"}) + "\n")
        state = read_journal(path)
        assert state.corrupt_records == 1
        assert state.requests == {}

    def test_append_reopen_keeps_single_logical_stream(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        writer = JournalWriter(path)
        writer.submit(request(0))
        writer.close()
        resumed = JournalWriter(path, append=True)
        resumed.complete("r0", COMPLETED, None, 2.0)
        resumed.close()
        state = read_journal(path)
        assert state.incomplete == []
        assert state.completions["r0"].finish_s == 2.0


@pytest.mark.faults
class TestCrashRecovery:
    def test_tick_crash_then_recover_completes_exactly_once(
        self, tmp_path
    ):
        path = tmp_path / "journal.jsonl"
        crashed = crash_run(path, faults="crash=tick:20")
        pre_crash = {
            r.request.request_id: r.result
            for r in crashed._records
            if r.status == COMPLETED
        }

        recovered = SearchService.recover(
            path,
            seed=5,
            n_devices=2,
            checkpoint_every=5,
            faults="crash=tick:20",  # stripped on recovery
        )
        records = recovered.run()
        assert [r.status for r in records].count(COMPLETED) == len(
            records
        )
        # Every journalled request finished exactly once: the journal
        # now holds one completion per submission, and any request
        # completed before the crash kept its original result.
        state = read_journal(path)
        assert set(state.completions) == set(state.requests)
        for rid, result in pre_crash.items():
            adopted = next(
                r
                for r in records
                if r.request.request_id == rid
            )
            assert adopted.result == result

        report = recovered.report()
        assert report.recovered == len(pre_crash)
        assert report.resumed + report.restarted == len(records) - len(
            pre_crash
        )
        assert "resumed from checkpoint" in report.render()

    def test_late_crash_resumes_from_checkpoints(self, tmp_path):
        """With checkpoints journalled before the crash, recovery must
        salvage them instead of restarting from scratch."""
        path = tmp_path / "journal.jsonl"
        crash_run(path, faults="crash=tick:20")
        state = read_journal(path)
        assert state.checkpoints  # the crash landed after checkpoints

        recovered = SearchService.recover(
            path, seed=5, n_devices=2, checkpoint_every=5
        )
        records = recovered.run()
        assert all(r.status == COMPLETED for r in records)
        report = recovered.report()
        assert report.resumed == len(state.checkpoints)
        assert report.recovered_iterations == sum(
            c.iterations for c in state.checkpoints.values()
        )
        assert report.recovered_iterations > 0

    def test_iteration_site_crash_recovers(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        crashed = crash_run(path, faults="crash=iter:12")
        assert crashed.injector.counters["crash"] == 1

        recovered = SearchService.recover(
            path, seed=5, n_devices=2, checkpoint_every=5
        )
        records = recovered.run()
        assert all(r.status == COMPLETED for r in records)
        state = read_journal(path)
        assert set(state.completions) == set(state.requests)

    def test_early_crash_restarts_from_scratch(self, tmp_path):
        """A crash before any checkpoint leaves only submissions: every
        incomplete request restarts and still completes."""
        path = tmp_path / "journal.jsonl"
        crash_run(path, faults="crash=tick:2", checkpoint_every=50)
        recovered = SearchService.recover(
            path, seed=5, n_devices=2, checkpoint_every=50
        )
        records = recovered.run()
        assert all(r.status == COMPLETED for r in records)
        report = recovered.report()
        assert report.resumed == 0
        assert report.restarted > 0

    def test_crash_drains_device_leases(self, tmp_path):
        """Regression: a crash (or any exception) escaping mid-run must
        not leak device leases -- ``assert_drained`` holds after."""
        path = tmp_path / "journal.jsonl"
        crashed = crash_run(path, faults="crash=iter:12")
        crashed.pool.assert_drained()
        crashed = crash_run(
            tmp_path / "j2.jsonl", faults="crash=tick:20"
        )
        crashed.pool.assert_drained()

    def test_generic_midrun_exception_drains_leases(self, monkeypatch):
        service = SearchService(seed=3, n_devices=2)
        service.submit_all(mixed_requests())

        def boom(*args, **kwargs):
            raise RuntimeError("launch blew up mid-run")

        monkeypatch.setattr(service, "_finish", boom)
        with pytest.raises(RuntimeError, match="mid-run"):
            service.run()
        service.pool.assert_drained()

    def test_recovered_service_journals_its_own_completions(
        self, tmp_path
    ):
        """A second crash during recovery is itself recoverable."""
        path = tmp_path / "journal.jsonl"
        crash_run(path, faults="crash=tick:6")
        second = SearchService.recover(
            path, seed=5, n_devices=2, checkpoint_every=5
        )
        # recover() strips planned crashes from the fault plan, so the
        # second outage is an unplanned exception after one completion.
        original_finish = second._finish
        finished = []

        def finish_once_then_die(record, *args, **kwargs):
            original_finish(record, *args, **kwargs)
            finished.append(record)
            raise RuntimeError("second outage")

        second._finish = finish_once_then_die
        with pytest.raises(RuntimeError, match="second outage"):
            second.run()
        assert finished  # the completion was journalled pre-outage
        third = SearchService.recover(
            path, seed=5, n_devices=2, checkpoint_every=5
        )
        records = third.run()
        assert all(r.status == COMPLETED for r in records)
        state = read_journal(path)
        assert set(state.completions) == set(state.requests)


class TestJournalledRunWithoutCrash:
    def test_journal_records_every_outcome(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        service = SearchService(
            seed=5, n_devices=2, journal=path, checkpoint_every=5
        )
        service.submit_all(mixed_requests())
        records = service.run()
        assert all(r.status == COMPLETED for r in records)
        state = read_journal(path)
        assert set(state.completions) == set(state.requests)
        assert state.checkpoints == {}  # completions supersede them
        for record in records:
            completion = state.completions[record.request.request_id]
            assert completion.result == record.result

    def test_journalling_does_not_change_results(self, tmp_path):
        plain = SearchService(seed=5, n_devices=2)
        plain.submit_all(mixed_requests())
        base = plain.run()

        journalled = SearchService(
            seed=5,
            n_devices=2,
            journal=tmp_path / "journal.jsonl",
            checkpoint_every=5,
        )
        journalled.submit_all(mixed_requests())
        observed = journalled.run()
        for a, b in zip(base, observed):
            assert a.status == b.status
            assert a.result.move == b.result.move
            assert a.result.stats == b.result.stats
            assert a.finish_s == b.finish_s

    def test_checkpoint_every_zero_disables_checkpoints(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        service = SearchService(
            seed=5, n_devices=2, journal=path, checkpoint_every=0
        )
        service.submit_all([request(0), request(1)])
        service.run()
        text = path.read_text()
        assert '"type": "checkpoint"' not in text


class TestForeignShardRecords:
    """A shard's journal polluted with *another shard's* records --
    a misrouted append or an operator concatenating per-shard files
    (docs/cluster.md).  The reader keeps every record; shard-scoped
    recovery (``rid_filter``) adopts only its own."""

    def shared_journal(self, tmp_path):
        """shard-a's journal with shard-b's records interleaved."""
        path = tmp_path / "shard-a.journal"
        writer = JournalWriter(path)
        ours = [request(i, request_id=f"a::r{i}") for i in range(3)]
        theirs = [
            request(i, request_id=f"b::r{i}", seed=900 + i)
            for i in range(2)
        ]
        writer.submit(ours[0])
        writer.submit(theirs[0])       # foreign submission
        writer.submit(ours[1])
        writer.complete("b::r0", COMPLETED, None, 1.0)  # foreign
        writer.checkpoint("b::r1", 7, b"foreign-snapshot")
        writer.submit(theirs[1])
        writer.submit(ours[2])
        writer.complete("a::r0", COMPLETED, None, 2.0)
        writer.close()
        return path, ours, theirs

    def test_read_journal_keeps_interleaved_foreign_records(
        self, tmp_path
    ):
        path, ours, theirs = self.shared_journal(tmp_path)
        state = read_journal(path)
        # The reader is shard-agnostic: everything is surfaced.
        assert set(state.requests) == {
            r.request_id for r in ours + theirs
        }
        assert state.completions["b::r0"].status == COMPLETED
        assert state.checkpoints["b::r1"].iterations == 7
        assert state.corrupt_records == 0

    def test_recover_rid_filter_skips_foreign_records(
        self, tmp_path
    ):
        path, ours, theirs = self.shared_journal(tmp_path)
        service = SearchService.recover(
            path,
            rid_filter=lambda rid: rid.startswith("a::"),
            seed=5,
            n_devices=2,
        )
        # Foreign submissions, completions and checkpoints were all
        # skipped wholesale and counted.
        assert service.foreign_records == 2
        rids = {r.request.request_id for r in service.records}
        assert rids == {r.request_id for r in ours}
        # Own completion adopted verbatim; own incompletes resubmitted.
        assert service.recovered_requests == 1
        assert service.restarted_requests == 2
        records = service.run()
        assert {r.request.request_id for r in records} == rids
        assert all(r.status == COMPLETED for r in records)
        # The foreign checkpoint was never adopted.
        assert service.resumed_requests == 0

    def test_recover_without_filter_adopts_everything(
        self, tmp_path
    ):
        path, ours, theirs = self.shared_journal(tmp_path)
        service = SearchService.recover(path, seed=5, n_devices=2)
        assert service.foreign_records == 0
        assert len(service.records) == 5

    def test_torn_line_at_shard_boundary(self, tmp_path):
        """A partial foreign append tearing mid-line must neither
        poison the reader nor leak into the owning shard's recovery."""
        path, ours, theirs = self.shared_journal(tmp_path)
        with open(path, "a") as fh:
            fh.write(
                '{"type": "submission", "rid": "b::r2", "ga'
            )  # torn mid-record: the writing shard died here
        state = read_journal(path)
        assert "b::r2" not in state.requests
        assert set(state.requests) == {
            r.request_id for r in ours + theirs
        }
        service = SearchService.recover(
            path,
            rid_filter=lambda rid: rid.startswith("a::"),
            seed=5,
            n_devices=2,
        )
        assert service.foreign_records == 2
        records = service.run()
        assert all(r.status == COMPLETED for r in records)
        assert {r.request.request_id for r in records} == {
            r.request_id for r in ours
        }
