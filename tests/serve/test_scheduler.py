"""Tests for the merged scheduling primitives (repro.serve.scheduler)."""

import pytest

from repro.core import make_engine
from repro.core.base import batch_executor
from repro.games import TicTacToe
from repro.gpu import TESLA_C2050, DevicePool
from repro.serve import (
    GeneratorPool,
    LaneBatcher,
    drive_generators,
    launch_config_for,
)
from repro.util.clock import Clock
from repro.util.seeding import derive_seed


def echo_gen(requests, out):
    """Yields each round's requests, accumulates answers, returns sum."""
    total = 0
    for round_reqs in requests:
        answers = yield round_reqs
        assert len(answers) == len(round_reqs)
        out.append(list(answers))
        total += sum(answers)
    return total


class TestGeneratorPool:
    def test_merged_rounds_slice_answers_correctly(self):
        seen_a, seen_b = [], []
        pool = GeneratorPool()
        pool.add("a", echo_gen([[1, 2], [3]], seen_a))
        pool.add("b", echo_gen([[10], [20, 30]], seen_b))
        assert pool.pending == ("a", "b")
        # Round 1: a asks for 2 lanes, b for 1.
        merged = pool.requests_for("a") + pool.requests_for("b")
        assert merged == [1, 2, 10]
        assert not pool.step("a", [100, 200])
        assert not pool.step("b", [300])
        # Round 2: deliver and finish both.
        assert pool.step("a", [400])
        assert pool.step("b", [500, 600])
        assert seen_a == [[100, 200], [400]]
        assert seen_b == [[300], [500, 600]]
        assert pool.results == {"a": 700, "b": 1400}
        assert pool.pending == ()

    def test_immediately_finished_generator(self):
        pool = GeneratorPool()
        assert pool.add("empty", echo_gen([], [])) is False
        assert pool.results["empty"] == 0

    def test_duplicate_key_rejected(self):
        pool = GeneratorPool()
        pool.add("a", echo_gen([[1]], []))
        with pytest.raises(ValueError, match="duplicate"):
            pool.add("a", echo_gen([[1]], []))

    def test_cancel_removes_without_result(self):
        pool = GeneratorPool()
        pool.add("a", echo_gen([[1], [2]], []))
        pool.cancel("a")
        assert pool.pending == ()
        assert "a" not in pool.results


class TestDriveGenerators:
    def test_matches_per_key_results_and_is_deterministic(self):
        game = TicTacToe()

        def run():
            gens = {
                f"g{i}": make_engine(
                    "sequential", game, derive_seed(9, i)
                ).search_steps(game.initial_state(), 0.002)
                for i in range(3)
            }
            return drive_generators(
                gens, batch_executor("tictactoe", 5)
            )

        first, second = run(), run()
        assert set(first) == {"g0", "g1", "g2"}
        for key in first:
            assert first[key].move == second[key].move
            assert first[key].simulations == second[key].simulations


class TestLaunchConfig:
    def test_warp_aligned_small_batch(self):
        cfg = launch_config_for(10)
        assert (cfg.blocks, cfg.threads_per_block) == (1, 32)

    def test_wide_batch_splits_into_blocks(self):
        cfg = launch_config_for(1000)
        assert cfg.threads_per_block == 128
        assert cfg.blocks == 8
        assert cfg.total_threads >= 1000

    def test_zero_lanes_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            launch_config_for(0)


class TestLaneBatcher:
    def make(self, n_devices=2):
        clock = Clock()
        pool = DevicePool((TESLA_C2050,) * n_devices, clock)
        return LaneBatcher(pool, seed=3), pool, clock

    def states(self, n):
        game = TicTacToe()
        return [game.initial_state()] * n

    def test_answers_aligned_with_states(self):
        batcher, _, _ = self.make()
        answers, records = batcher.execute("tictactoe", self.states(5))
        assert len(answers) == 5
        assert all(
            winner in (-1, 0, 1) and plies >= 0
            for winner, plies in answers
        )
        assert sum(r.lanes for r in records) == 5

    def test_deterministic_across_fresh_batchers(self):
        a, _, _ = self.make()
        b, _, _ = self.make()
        ra, _ = a.execute("tictactoe", self.states(7))
        rb, _ = b.execute("tictactoe", self.states(7))
        assert ra == rb

    def test_small_batches_never_split(self):
        batcher, _, _ = self.make(n_devices=4)
        _, records = batcher.execute("tictactoe", self.states(32))
        assert len(records) == 1

    def test_wide_batches_split_across_devices(self):
        batcher, pool, _ = self.make(n_devices=2)
        _, records = batcher.execute("tictactoe", self.states(200))
        assert len(records) == 2
        assert {r.lease.device_id for r in records} == {0, 1}

    def test_empty_batch_is_free(self):
        batcher, _, _ = self.make()
        assert batcher.execute("tictactoe", []) == ([], [])
        assert batcher.launch_count == 0
        assert batcher.mean_lanes_per_launch == 0.0
