"""Tests for deterministic workload generation (repro.serve.workload)."""

import pytest

from repro.serve import WorkloadConfig, make_workload
from repro.serve.workload import DEFAULT_BUDGETS


class TestWorkload:
    def test_same_config_same_workload(self):
        cfg = WorkloadConfig(n_requests=12, seed=5)
        assert make_workload(cfg) == make_workload(cfg)

    def test_different_seed_different_request_seeds(self):
        a = make_workload(WorkloadConfig(n_requests=4, seed=1))
        b = make_workload(WorkloadConfig(n_requests=4, seed=2))
        assert [r.seed for r in a] != [r.seed for r in b]

    def test_cycles_through_games_and_engines(self):
        reqs = make_workload(WorkloadConfig(n_requests=12))
        games = {r.game for r in reqs}
        engines = {str(r.engine) for r in reqs}
        assert games == {"reversi", "tictactoe", "connect4"}
        assert "sequential" in engines
        assert any(e.startswith("root:") for e in engines)
        assert any(e.startswith("block:") for e in engines)

    def test_budgets_follow_game_defaults_and_scale(self):
        reqs = make_workload(
            WorkloadConfig(n_requests=6, budget_scale=0.5)
        )
        for req in reqs:
            assert req.budget_s == pytest.approx(
                DEFAULT_BUDGETS[req.game] * 0.5
            )

    def test_arrival_period_spaces_requests(self):
        reqs = make_workload(
            WorkloadConfig(n_requests=3, arrival_period_s=0.1)
        )
        assert [r.arrival_s for r in reqs] == [0.0, 0.1, 0.2]

    def test_unique_request_ids(self):
        reqs = make_workload(WorkloadConfig(n_requests=64))
        assert len({r.request_id for r in reqs}) == 64

    def test_validation(self):
        with pytest.raises(ValueError, match="n_requests"):
            WorkloadConfig(n_requests=0)
        with pytest.raises(ValueError, match="budget_scale"):
            WorkloadConfig(budget_scale=0.0)


class TestPositionSkew:
    def test_default_workload_searches_initial_positions(self):
        reqs = make_workload(WorkloadConfig(n_requests=8))
        assert all(r.state is None for r in reqs)

    def test_pooled_positions_are_deterministic_and_live(self):
        from repro.games import make_game

        cfg = WorkloadConfig(
            n_requests=24, seed=3, position_pool=12
        )
        reqs = make_workload(cfg)
        again = make_workload(cfg)
        assert all(r.state is not None for r in reqs)
        assert [r.state for r in reqs] == [r.state for r in again]
        games = {name: make_game(name) for name in cfg.games}
        for r in reqs:
            assert not games[r.game].is_terminal(r.state)

    def test_skew_concentrates_traffic_on_hot_positions(self):
        from collections import Counter

        def key_counts(skew):
            reqs = make_workload(
                WorkloadConfig(
                    n_requests=60,
                    seed=3,
                    games=("tictactoe",),
                    engines=("sequential",),
                    position_pool=30,
                    position_skew=skew,
                )
            )
            return Counter(r.state for r in reqs)

        uniform = key_counts(0.0)
        skewed = key_counts(1.4)
        # Zipf mass piles onto the head: the hottest position is
        # hotter, and fewer distinct positions are touched.
        assert skewed.most_common(1)[0][1] > (
            uniform.most_common(1)[0][1]
        )
        assert len(skewed) < len(uniform)

    def test_skew_defaults_a_pool(self):
        cfg = WorkloadConfig(position_skew=1.0)
        assert cfg.effective_position_pool == 32
        assert WorkloadConfig().effective_position_pool == 0

    def test_skew_validation(self):
        with pytest.raises(ValueError, match="position_skew"):
            WorkloadConfig(position_skew=-0.1)
        with pytest.raises(ValueError, match="position_pool"):
            WorkloadConfig(position_pool=-1)
