"""Tree-backend selection through the serving layer.

The backend threads through two doors: ``WorkloadConfig.backend``
suffixes ``@arena`` onto every generated engine spec, and
``SearchService(backend=...)`` applies a default to requests whose
spec did not pick one.  Because the backends are bit-identical by
contract, an all-arena run must reproduce the node run's results
exactly.
"""

import pytest

from repro.serve import SearchService, WorkloadConfig, make_workload


def test_workload_backend_suffixes_engine_specs():
    requests = make_workload(WorkloadConfig(n_requests=8, backend="arena"))
    assert all(r.engine.endswith("@arena") for r in requests)
    # Default leaves specs untouched.
    plain = make_workload(WorkloadConfig(n_requests=8))
    assert not any("@" in r.engine for r in plain)


def test_workload_backend_respects_explicit_suffix():
    config = WorkloadConfig(
        n_requests=2, engines=("block:2x8@node",), backend="arena"
    )
    assert all(
        r.engine == "block:2x8@node" for r in make_workload(config)
    )


def test_workload_rejects_unknown_backend():
    with pytest.raises(ValueError, match="backend"):
        WorkloadConfig(n_requests=2, backend="cuda")


def test_service_rejects_unknown_backend():
    with pytest.raises(ValueError, match="backend"):
        SearchService(backend="cuda")


def _run(workload_backend: str, service_backend: str):
    requests = make_workload(
        WorkloadConfig(
            n_requests=6, budget_scale=0.25, backend=workload_backend
        )
    )
    service = SearchService(
        n_devices=2, max_active=8, seed=7, backend=service_backend
    )
    service.submit_all(requests)
    return {
        rec.request.request_id: (
            rec.status,
            rec.result.move if rec.result else None,
            rec.result.simulations if rec.result else None,
        )
        for rec in service.run()
    }


def test_arena_service_reproduces_node_results():
    node = _run("node", "node")
    via_workload = _run("arena", "node")
    via_service_default = _run("node", "arena")
    assert via_workload == node
    assert via_service_default == node
