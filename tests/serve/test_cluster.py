"""The sharded serving cluster: consistent-hash routing, the
single-shard bit-identity pin, replica voting, cache coalescing, and
journal-backed shard recovery."""

import pytest

from repro.serve import (
    COMPLETED,
    MISSED,
    ClusterRouter,
    HashRing,
    HedgePolicy,
    ResultCache,
    SearchRequest,
    SearchService,
    ServiceError,
)
from repro.util.seeding import derive_seed
from tests.core.test_differential import SMALL_SPECS

BUDGET = 4e-4

#: Integrity defenses fully off: a Byzantine shard's corruption
#: reaches its replica answers untouched.
NO_DEFENSE = {
    "validate_results": False,
    "audit_every": 0,
    "quarantine": False,
}


def request(i, engine="sequential", **kwargs):
    defaults = dict(
        request_id=f"r{i:03d}",
        game="tictactoe",
        engine=engine,
        budget_s=BUDGET,
        seed=100 + i,
        arrival_s=i * 1e-3,
    )
    defaults.update(kwargs)
    return SearchRequest(**defaults)


def mixed_requests(n=6):
    games = ["tictactoe", "reversi", "connect4"]
    engines = ["sequential", "root:2", "leaf:1x16"]
    return [
        request(i, game=games[i % 3], engine=engines[i % 3])
        for i in range(n)
    ]


def fingerprint(record):
    """Everything observable about one request's outcome."""
    stats = (
        None
        if record.result is None
        else tuple(sorted(record.result.stats.items()))
    )
    return (
        record.request.request_id,
        record.status,
        record.start_s,
        record.finish_s,
        record.ticks,
        record.lanes,
        record.degraded,
        record.lost_lanes,
        None if record.result is None else record.result.move,
        stats,
        None
        if record.result is None
        else record.result.iterations,
        None
        if record.result is None
        else record.result.simulations,
    )


# -- consistent-hash ring ----------------------------------------------------


class TestHashRing:
    def test_deterministic_and_distinct_replicas(self):
        ring = HashRing(8, seed=3)
        again = HashRing(8, seed=3)
        for key in range(0, 2**64, 2**59):
            owners = ring.shards_for(key, 3)
            assert owners == again.shards_for(key, 3)
            assert len(owners) == len(set(owners)) == 3
            assert all(0 <= s < 8 for s in owners)

    def test_replica_count_capped_at_shards(self):
        ring = HashRing(2, seed=0)
        assert len(ring.shards_for(123, 5)) == 2

    def test_keys_spread_over_shards(self):
        ring = HashRing(4, seed=1)
        owners = {
            ring.shard_for(derive_seed(7, k)) for k in range(200)
        }
        assert owners == {0, 1, 2, 3}

    def test_adding_a_shard_moves_few_keys(self):
        # The consistent-hashing contract: growing the ring only
        # remaps the keys landing in the new shard's arcs.
        keys = [derive_seed(11, k) for k in range(500)]
        small = HashRing(8, seed=2)
        grown = HashRing(9, seed=2)
        moved = sum(
            1
            for k in keys
            if small.shard_for(k) != grown.shard_for(k)
        )
        # Expect ~1/9 of keys to move; allow generous slack.
        assert moved < len(keys) * 0.25

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)


# -- the bit-identity pin ----------------------------------------------------


@pytest.mark.parametrize("backend", ["node", "arena"])
@pytest.mark.parametrize(
    "kind", sorted(SMALL_SPECS), ids=sorted(SMALL_SPECS)
)
def test_single_shard_cluster_is_bit_identical(kind, backend):
    """A 1-shard, 1-replica, cache-off cluster must produce exactly
    the bare service's records -- every engine kind, both backends."""
    spec = SMALL_SPECS[kind]
    reqs = [
        request(i, engine=spec, game=game)
        for i, game in enumerate(
            ["tictactoe", "reversi", "connect4"]
        )
    ]
    bare = SearchService(seed=9, n_devices=2, backend=backend)
    bare.submit_all(reqs)
    bare_records = bare.run()

    cluster = ClusterRouter(
        n_shards=1,
        replicas=1,
        cache=None,
        seed=9,
        n_devices=2,
        backend=backend,
    )
    cluster.submit_all(reqs)
    cluster_records = cluster.run()

    assert [fingerprint(r) for r in cluster_records] == [
        fingerprint(r) for r in bare_records
    ]


# -- routing -----------------------------------------------------------------


def test_transpositions_route_to_the_same_shard():
    from repro.games import make_game

    game = make_game("tictactoe")
    s = game.initial_state()
    a = game.apply(game.apply(game.apply(s, 0), 4), 8)
    b = game.apply(game.apply(game.apply(s, 8), 4), 0)
    cluster = ClusterRouter(n_shards=8, seed=4)
    ra = request(0, state=a)
    rb = request(1, state=b)
    assert cluster._route_key(ra) == cluster._route_key(rb)
    assert cluster.ring.shard_for(
        cluster._route_key(ra)
    ) == cluster.ring.shard_for(cluster._route_key(rb))


def test_requests_fan_out_across_shards():
    cluster = ClusterRouter(n_shards=4, seed=0, cache=None)
    cluster.submit_all(mixed_requests(12))
    records = cluster.run()
    assert all(r.status == COMPLETED for r in records)
    report = cluster.report()
    assert report.completed == 12
    served = sum(
        1 for rep in report.shard_reports if rep.offered > 0
    )
    assert served >= 2  # traffic actually spread out
    assert report.elapsed_s == max(report.shard_elapsed_s)


def test_submission_errors():
    cluster = ClusterRouter(n_shards=2)
    cluster.submit(request(0))
    with pytest.raises(ServiceError):
        cluster.submit(request(0))
    cluster.run()
    with pytest.raises(ServiceError):
        cluster.submit(request(1))
    with pytest.raises(ServiceError):
        cluster.run()
    with pytest.raises(ValueError):
        ClusterRouter(n_shards=2, replicas=0)
    with pytest.raises(ValueError):
        ClusterRouter(n_shards=2, vote_trim=0.5)


# -- the result cache in the cluster -----------------------------------------


def duplicate_position_requests(n=8):
    """All asking the same search of the same position."""
    return [
        request(i, engine="sequential", seed=500 + i)
        for i in range(n)
    ]


class TestClusterCache:
    def test_duplicates_coalesce_behind_one_leader(self):
        cluster = ClusterRouter(n_shards=2, seed=1, cache=True)
        cluster.submit_all(duplicate_position_requests(8))
        records = cluster.run()
        assert all(r.status == COMPLETED for r in records)
        report = cluster.report()
        # One leader searched; seven duplicates rode its result.
        assert report.cache_hits == 7
        assert report.cache_hit_rate > 0
        leader, *rest = records
        assert "cache_hit" not in leader.extras
        for r in rest:
            assert r.extras.get("cache_hit") is True
            assert r.result.move == leader.result.move
            # Served at/after the leader finished, plus hit cost.
            assert r.finish_s >= leader.finish_s

    def test_request_seed_is_not_part_of_the_key(self):
        # Different seeds, same position/spec/budget: one search.
        cluster = ClusterRouter(n_shards=1, seed=1, cache=True)
        cluster.submit_all(duplicate_position_requests(4))
        cluster.run()
        assert cluster.report().cache_misses == 1

    def test_cache_off_never_hits(self):
        cluster = ClusterRouter(n_shards=2, seed=1, cache=None)
        cluster.submit_all(duplicate_position_requests(6))
        records = cluster.run()
        report = cluster.report()
        assert report.cache_hits == 0
        assert report.completed == 6
        # Every request paid for its own search.
        assert all(
            "cache_hit" not in r.extras for r in records
        )

    def test_prewarmed_cache_serves_at_arrival(self):
        cache = ResultCache()
        warm = ClusterRouter(n_shards=1, seed=1, cache=cache)
        warm.submit_all(duplicate_position_requests(2))
        warm.run()
        cluster = ClusterRouter(n_shards=1, seed=1, cache=cache)
        cluster.submit(request(0, seed=999))
        (record,) = cluster.run()
        assert record.extras.get("cache_hit") is True
        # No leader to wait on: answered right at arrival.
        assert record.finish_s == pytest.approx(
            record.request.arrival_s + cluster.cache_hit_cost_s
        )

    def test_follower_past_deadline_is_missed(self):
        reqs = [
            request(0, budget_s=2e-3),
            request(
                1,
                budget_s=2e-3,
                seed=600,
                deadline_s=1e-6,
            ),
        ]
        cluster = ClusterRouter(n_shards=1, seed=1, cache=True)
        cluster.submit_all(reqs)
        records = cluster.run()
        assert records[0].status == COMPLETED
        # The leader's answer landed after the follower's deadline.
        assert records[1].status == MISSED
        assert records[1].extras.get("cache_hit") is True


# -- replica voting ----------------------------------------------------------


class TestReplication:
    def test_replicas_aggregate_via_trimmed_vote(self):
        cluster = ClusterRouter(
            n_shards=4, replicas=3, seed=2, cache=None
        )
        reqs = mixed_requests(6)
        cluster.submit_all(reqs)
        records = cluster.run()
        assert all(r.status == COMPLETED for r in records)
        for r in records:
            assert r.result.engine == "cluster"
            assert r.result.extras["cluster.replicas"] == 3
        # Replica clones actually landed on distinct shards.
        offered = sum(
            rep.offered
            for rep in cluster.report().shard_reports
        )
        assert offered == 18

    def test_byzantine_shard_survives_the_vote(self):
        """One shard returning corrupted statistics must not steer
        the voted answer away from the objectively best move."""
        from repro.games import make_game

        game = make_game("tictactoe")

        def pos(moves):
            state = game.initial_state()
            for m in moves:
                state = game.apply(state, m)
            return state

        # Forced wins: every clean search agrees on one move, so the
        # trimmed median is anchored by the two clean replicas.
        wins = [
            ((0, 3, 1, 4), 2),
            ((2, 3, 1, 4), 0),
            ((6, 0, 7, 1), 8),
            ((8, 0, 7, 1), 6),
            ((0, 1, 3, 2), 6),
            ((2, 1, 5, 4), 8),
        ]
        reqs = [
            request(i, budget_s=8e-4, state=pos(moves))
            for i, (moves, _) in enumerate(wins)
        ]
        byz = ClusterRouter(
            n_shards=4,
            replicas=3,
            seed=2,
            cache=None,
            shard_overrides={
                1: {
                    "faults": "corrupt=1.0:overflow",
                    "integrity": NO_DEFENSE,
                }
            },
        )
        byz.submit_all(reqs)
        byz_records = byz.run()
        assert all(r.status == COMPLETED for r in byz_records)
        # The corruption demonstrably altered Byzantine replicas'
        # own answers ...
        assert byz.report().replica_dissent > 0
        # ... yet every voted move is still the forced win.
        for record, (_, winning_move) in zip(byz_records, wins):
            assert record.result.move == winning_move

    def test_one_replica_record_is_the_shard_record(self):
        cluster = ClusterRouter(
            n_shards=4, replicas=1, seed=2, cache=None
        )
        cluster.submit_all(mixed_requests(4))
        records = cluster.run()
        # No vote, no "cluster" engine: the shard's own result.
        assert all(
            r.result.engine != "cluster" for r in records
        )


# -- shard crash recovery ----------------------------------------------------


class TestShardRecovery:
    def test_crashed_shard_recovers_exactly_once(self, tmp_path):
        cluster = ClusterRouter(
            n_shards=2,
            replicas=1,
            seed=3,
            cache=None,
            journal_dir=tmp_path,
            faults="crash=tick:3",
        )
        reqs = mixed_requests(8)
        cluster.submit_all(reqs)
        records = cluster.run()
        assert [r.request.request_id for r in records] == [
            r.request_id for r in reqs
        ]
        assert all(r.status == COMPLETED for r in records)
        report = cluster.report()
        assert report.shard_crashes >= 1
        assert report.shard_recoveries == report.shard_crashes
        assert report.mean_mttr_s > 0
        rendered = report.render()
        assert "shard crashes" in rendered
        assert "mean MTTR (s)" in rendered

    def test_crash_without_journal_propagates(self):
        from repro.serve import ServiceCrash

        cluster = ClusterRouter(
            n_shards=1,
            seed=3,
            cache=None,
            faults="crash=tick:2",
        )
        cluster.submit_all(mixed_requests(4))
        with pytest.raises(ServiceCrash):
            cluster.run()

    def test_recovery_is_scoped_to_the_shards_own_requests(
        self, tmp_path
    ):
        # Both shards share one journal *directory*; each recovers
        # only from its own file, rid-scoped.
        cluster = ClusterRouter(
            n_shards=2,
            replicas=2,
            seed=3,
            cache=None,
            journal_dir=tmp_path,
            faults="crash=tick:4",
        )
        cluster.submit_all(mixed_requests(6))
        records = cluster.run()
        assert all(r.status == COMPLETED for r in records)
        assert (
            len({r.request.request_id for r in records}) == 6
        )


# -- reporting ---------------------------------------------------------------


def test_report_shares_the_service_row_format():
    from repro.serve import ServiceReport

    cluster = ClusterRouter(n_shards=2, seed=1, cache=True)
    cluster.submit_all(mixed_requests(6))
    cluster.run()
    report = cluster.report()
    rendered = report.render()
    shard_rendered = report.shard_reports[0].render()
    # The shared outcome rows appear, with identical labels, in both
    # the aggregate and the per-shard tables (one formatter).
    for label in (
        "offered requests",
        "completed",
        "latency p50 (ms)",
        "requests/s",
    ):
        assert label in rendered
        assert label in shard_rendered
    assert "per-shard" in rendered
    assert isinstance(report.shard_reports[0], ServiceReport)
    assert report.requests_per_s >= 0
    assert 0 <= report.completion_rate <= 1


def test_report_before_run_raises():
    cluster = ClusterRouter(n_shards=1)
    with pytest.raises(ServiceError):
        cluster.report()


# -- failure-domain-aware replica placement ----------------------------------


class TestFailureDomains:
    def test_default_domains_are_legacy_identical(self):
        # domains=None (one domain per shard) must not change a
        # single placement decision vs the pre-domain ring.
        legacy = HashRing(8, seed=3)
        explicit = HashRing(8, seed=3, domains=tuple(range(8)))
        for key in range(0, 2**64, 2**58):
            assert legacy.shards_for(key, 3) == explicit.shards_for(
                key, 3
            )
        assert legacy.replica_collisions == 0
        assert explicit.replica_collisions == 0

    def test_replicas_span_distinct_domains(self):
        # 8 shards racked into 4 domains: 3 replicas must land in 3
        # different domains, for every key.
        domains = tuple(i % 4 for i in range(8))
        ring = HashRing(8, seed=3, domains=domains)
        for key in range(0, 2**64, 2**57):
            owners = ring.shards_for(key, 3)
            assert len(owners) == len(set(owners)) == 3
            assert len({domains[s] for s in owners}) == 3
        assert ring.replica_collisions == 0

    def test_fewer_domains_than_replicas_degrades_and_counts(self):
        # 4 shards in 2 domains cannot place 3 domain-distinct
        # replicas: the ring falls back to distinct shards (never
        # fewer replicas) and counts each violation.
        ring = HashRing(4, seed=1, domains=(0, 0, 1, 1))
        owners = ring.shards_for(123, 3)
        assert len(owners) == len(set(owners)) == 3
        assert ring.replica_collisions >= 1

    def test_rejects_wrong_domain_length(self):
        with pytest.raises(ValueError):
            HashRing(4, domains=(0, 1))

    def test_cluster_pins_zero_collisions_with_enough_domains(self):
        cluster = ClusterRouter(
            n_shards=4,
            replicas=3,
            seed=2,
            cache=None,
            failure_domains=(0, 1, 2, 3),
        )
        cluster.submit_all(mixed_requests(6))
        records = cluster.run()
        assert cluster.report().replica_collisions == 0
        for r in records:
            assert (
                r.result.extras["cluster.replica_collisions"] == 0
            )

    def test_cluster_counts_collisions_with_too_few_domains(self):
        cluster = ClusterRouter(
            n_shards=4,
            replicas=3,
            seed=2,
            cache=None,
            failure_domains=(0, 0, 1, 1),
        )
        cluster.submit_all(mixed_requests(6))
        records = cluster.run()
        report = cluster.report()
        # Every request needs 3 replicas over 2 domains: at least
        # one violation each.
        assert report.replica_collisions >= len(records)
        assert any(
            r.result.extras["cluster.replica_collisions"] >= 1
            for r in records
        )


class TestHedgePolicy:
    """Validation and coercion of the hedged-request policy."""

    def test_coerce_forms(self):
        assert HedgePolicy.coerce(None) is None
        assert HedgePolicy.coerce(False) is None
        default = HedgePolicy.coerce(True)
        assert default.trigger_percentile == 95.0
        assert default.include_missed is True
        custom = HedgePolicy.coerce(
            dict(trigger_percentile=50.0, min_delay_s=0.01)
        )
        assert custom.trigger_percentile == 50.0
        assert custom.min_delay_s == 0.01
        policy = HedgePolicy(trigger_percentile=90.0)
        assert HedgePolicy.coerce(policy) is policy
        with pytest.raises(TypeError, match="coerce"):
            HedgePolicy.coerce(42)

    def test_validation(self):
        with pytest.raises(ValueError, match="trigger_percentile"):
            HedgePolicy(trigger_percentile=0.0)
        with pytest.raises(ValueError, match="trigger_percentile"):
            HedgePolicy(trigger_percentile=101.0)
        with pytest.raises(ValueError, match="min_delay_s"):
            HedgePolicy(min_delay_s=-0.1)


class TestHedgedRequests:
    """Cluster-level hedged requests: tail primaries race a backup on
    the next distinct shard; the faster side wins."""

    @staticmethod
    def tail_heavy_requests():
        # Six quick requests set the latency percentile; two heavies
        # land firmly in the tail above any p50 trigger.
        quick = [request(i) for i in range(6)]
        heavy = [
            request(6 + i, budget_s=BUDGET * 10, seed=300 + i)
            for i in range(2)
        ]
        return quick + heavy

    def test_tail_requests_get_hedged(self):
        router = ClusterRouter(
            n_shards=2,
            seed=9,
            n_devices=1,
            hedge=dict(trigger_percentile=50.0),
        )
        router.submit_all(self.tail_heavy_requests())
        records = router.run()
        report = router.report()
        assert all(r.status == COMPLETED for r in records)
        # The two heavies sit above the p50 trigger, so at least they
        # fired backups; every hedged race left its mark.
        assert report.hedges_fired >= 2
        assert report.hedge_trigger_s > 0
        hedged = [r for r in records if r.extras.get("hedged")]
        assert len(hedged) == report.hedges_fired
        assert (
            sum(1 for r in hedged if r.extras.get("hedge_won"))
            == report.hedge_wins
        )
        assert report.hedge_wins <= report.hedges_fired
        # Backup clones never leak into the final records: results
        # are reported under the original request ids.
        assert all(
            "::h" not in r.request.request_id for r in records
        )
        # Any completed loser is accounted as cancelled waste.
        if report.hedges_cancelled:
            assert report.hedge_wasted_s > 0

    def test_deadline_inside_trigger_never_hedges(self):
        # min_delay_s pins the trigger far past every deadline: by
        # the time a backup could fire the SLO is already gone, so
        # even a missed primary fires no hedge.
        reqs = [
            request(i, deadline_s=0.05) for i in range(4)
        ] + [
            request(4, budget_s=0.1, deadline_s=0.05, seed=400)
        ]
        router = ClusterRouter(
            n_shards=2,
            seed=9,
            n_devices=1,
            hedge=dict(trigger_percentile=50.0, min_delay_s=10.0),
        )
        router.submit_all(reqs)
        records = router.run()
        assert any(r.status == MISSED for r in records)
        assert router.hedges_fired == 0
        assert all(
            not r.extras.get("hedged") for r in records
        )

    def test_hedged_run_replays_bit_identical(self):
        def run_once():
            router = ClusterRouter(
                n_shards=2,
                seed=9,
                n_devices=1,
                hedge=dict(trigger_percentile=50.0),
            )
            router.submit_all(self.tail_heavy_requests())
            records = router.run()
            return [fingerprint(r) for r in records], (
                router.hedges_fired,
                router.hedge_wins,
                router.hedges_cancelled,
                router.hedge_wasted_s,
            )

        first, second = run_once(), run_once()
        assert first == second
