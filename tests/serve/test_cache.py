"""The Zobrist-keyed result cache: LRU bound, TTL, screening."""

import pytest

from repro.core.results import SearchResult
from repro.games import make_game
from repro.serve.cache import (
    CacheKey,
    ResultCache,
    cache_key_for,
    screen_result,
)
from repro.serve.request import SearchRequest


def result_for(game, state, budget=0.002):
    """A well-formed search result for ``state``."""
    moves = game.legal_moves(state)
    stats = {m: (4.0 + i, 2.0) for i, m in enumerate(moves[:3])}
    best = max(stats, key=lambda m: stats[m][0])
    return SearchResult(
        move=best,
        stats=stats,
        iterations=10,
        simulations=10,
        max_depth=3,
        tree_nodes=11,
        elapsed_s=budget,
        engine="sequential",
    )


@pytest.fixture
def game():
    return make_game("tictactoe")


@pytest.fixture
def state(game):
    return game.initial_state()


def key_of(game, state, spec="sequential", budget=0.002):
    return cache_key_for(game, state, spec, budget)


def test_cache_key_is_positional_not_textual(game, state):
    # Same position reached through different move orders: same key.
    a = game.apply(game.apply(game.apply(state, 0), 4), 8)
    b = game.apply(game.apply(game.apply(state, 8), 4), 0)
    assert key_of(game, a) == key_of(game, b)
    # Different spec or budget: different key.
    assert key_of(game, a) != key_of(game, a, spec="root:2")
    assert key_of(game, a) != key_of(game, a, budget=0.004)


def test_key_for_defaults_to_initial_state(game, state):
    cache = ResultCache()
    request = SearchRequest(
        request_id="r0",
        game="tictactoe",
        engine="sequential",
        budget_s=0.002,
        seed=1,
    )
    assert cache.key_for(request) == key_of(game, state)


def test_spec_canonicalisation_shares_entries(game, state):
    # Equivalent spec spellings canonicalise to one cache line.
    assert key_of(game, state, spec="tree:2@vloss") == key_of(
        game, state, spec="tree:2"
    )


def test_hit_miss_and_lru_eviction(game, state):
    cache = ResultCache(capacity=2)
    states = [state, game.apply(state, 0), game.apply(state, 4)]
    keys = [key_of(game, s) for s in states]
    for k, s in zip(keys[:2], states[:2]):
        assert cache.insert(k, s, result_for(game, s), now_s=0.0)
    assert cache.lookup(keys[0], 1.0) is not None  # refreshes LRU
    assert cache.insert(
        keys[2], states[2], result_for(game, states[2]), now_s=1.0
    )
    # keys[1] was least recently used -> evicted.
    assert cache.lookup(keys[1], 1.0) is None
    assert cache.lookup(keys[0], 1.0) is not None
    assert cache.evictions == 1
    assert cache.hits == 2 and cache.misses == 1


def test_ttl_expiry(game, state):
    cache = ResultCache(ttl_s=1.0)
    key = key_of(game, state)
    cache.insert(key, state, result_for(game, state), now_s=0.0)
    assert cache.lookup(key, 0.5) is not None
    assert cache.lookup(key, 1.6) is None  # expired and removed
    assert cache.expirations == 1
    assert len(cache) == 0


def test_screening_refuses_corrupt_results(game, state):
    cache = ResultCache()
    key = key_of(game, state)
    clean = result_for(game, state)

    # Illegal chosen move (Byzantine shard fabricated an answer).
    from dataclasses import replace

    bad_move = replace(clean, move=99)
    assert not cache.insert(key, state, bad_move, now_s=0.0)
    # Illegal move in the stats.
    bad_stats = replace(clean, stats={99: (1.0, 0.5)}, move=99)
    assert not cache.insert(key, state, bad_stats, now_s=0.0)
    # Non-finite visit mass.
    nan_stats = replace(
        clean, stats={clean.move: (float("nan"), 0.0)}
    )
    assert not cache.insert(key, state, nan_stats, now_s=0.0)
    # Wins exceeding visits.
    inflated = replace(clean, stats={clean.move: (1.0, 5.0)})
    assert not cache.insert(key, state, inflated, now_s=0.0)
    assert cache.screened_out == 4
    assert len(cache) == 0

    assert cache.insert(key, state, clean, now_s=0.0)
    assert cache.lookup(key, 0.0).result is clean


def test_screen_result_contract(game, state):
    assert screen_result(game, state, result_for(game, state))
    assert not screen_result(game, state, None)


def test_hit_rate_and_coerce(game, state):
    cache = ResultCache()
    key = key_of(game, state)
    assert cache.hit_rate == 0.0
    cache.insert(key, state, result_for(game, state), now_s=0.0)
    cache.lookup(key, 0.0)
    cache.lookup(CacheKey("tictactoe", 1, "sequential", 0.1), 0.0)
    assert cache.hit_rate == pytest.approx(0.5)

    assert ResultCache.coerce(None) is None
    assert ResultCache.coerce(False) is None
    assert isinstance(ResultCache.coerce(True), ResultCache)
    assert ResultCache.coerce({"capacity": 7}).capacity == 7
    assert ResultCache.coerce(cache) is cache
    with pytest.raises(TypeError):
        ResultCache.coerce(3.14)
    with pytest.raises(ValueError):
        ResultCache(ttl_s=0.0)


def test_stale_hits_counted_not_refused(game, state):
    # Non-stationary traffic: a hit past stale_after_s is still
    # served (it has not expired) but counted, so hit-rate claims
    # on diurnal traces stay honest.
    cache = ResultCache(ttl_s=10.0, stale_after_s=0.5)
    key = key_of(game, state)
    cache.insert(key, state, result_for(game, state), now_s=0.0)
    fresh = cache.lookup(key, 0.4)
    assert fresh is not None
    assert cache.stale_hits == 0
    stale = cache.lookup(key, 0.9)
    assert stale is not None
    assert stale.result is fresh.result
    assert cache.stale_hits == 1
    assert cache.hits == 2
    with pytest.raises(ValueError):
        ResultCache(stale_after_s=0.0)


def test_sweep_ages_out_without_counting_misses(game, state):
    cache = ResultCache(ttl_s=1.0)
    other = game.apply(state, 4)
    cache.insert(key_of(game, state), state, result_for(game, state), now_s=0.0)
    cache.insert(
        key_of(game, other), other, result_for(game, other), now_s=0.8
    )
    assert len(cache) == 2
    # At t=1.5 only the t=0.0 entry is past its TTL.
    assert cache.sweep(1.5) == 1
    assert len(cache) == 1
    assert cache.expirations == 1
    assert cache.misses == 0  # sweep is not a lookup
    assert cache.lookup(key_of(game, other), 1.5) is not None
    # No TTL -> sweep is a no-op.
    assert ResultCache().sweep(100.0) == 0
