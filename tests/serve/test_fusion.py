"""Bit-identity and packing wall for cross-tenant kernel fusion.

Fusion is a *launch geometry* optimisation, never a results change:

* the same submitted workload must produce identical per-request
  results fused vs unfused (and under ``playout="compiled"``);
* arbitrary tenant interleavings must round-trip pad -> fuse ->
  scatter with no cross-tenant leakage, no dropped or duplicated
  lanes, and a drained device pool after every schedule (Hypothesis);
* the integrity screen must see every fused readback exactly once per
  tenant slice per delivery attempt;
* crash -> recover with fused compiled runs completes exactly once;
* the pad scratch buffer is reused, not re-allocated per launch.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector, FaultPlan
from repro.games import TicTacToe, make_game
from repro.gpu import TESLA_C2050, DevicePool
from repro.gpu.kernel import playout_kernel_spec
from repro.integrity import IntegrityPolicy, IntegrityState
from repro.serve import (
    COMPLETED,
    MISSED,
    FusedBatcher,
    LaneBatcher,
    ResilientLauncher,
    SearchRequest,
    SearchService,
    ServiceCrash,
    TERMINAL_STATUSES,
    WorkloadConfig,
    fused_kernel_spec,
    make_workload,
    read_journal,
)
from repro.serve import scheduler as scheduler_mod
from repro.util.clock import Clock

SEED = 17


def make_pool(n_devices=2):
    return DevicePool((TESLA_C2050,) * n_devices, Clock())


def states_for(game_name, n):
    return [make_game(game_name).initial_state()] * n


def record_key(record):
    """Everything a tenant observes about its request's outcome."""
    result = record.result
    if result is None:
        return (record.status, None)
    return (
        record.status,
        result.move,
        tuple(sorted(result.stats.items())),
        result.iterations,
        result.simulations,
    )


def run_service(**kwargs):
    defaults = dict(seed=7, n_devices=2)
    defaults.update(kwargs)
    service = SearchService(**defaults)
    service.submit_all(
        make_workload(WorkloadConfig(n_requests=24, seed=2011))
    )
    records = service.run()
    return service, records


class TestFusedServiceIdentity:
    def test_fused_matches_unfused_per_request(self):
        fused_svc, fused = run_service(fusion=True)
        plain_svc, plain = run_service(fusion=False)
        assert [r.request.request_id for r in fused] == [
            r.request.request_id for r in plain
        ]
        for rf, rp in zip(fused, plain):
            assert record_key(rf) == record_key(rp)
        # The identical results were produced by a very different
        # launch geometry: fewer, fused launches.
        fr, pr = fused_svc.report(), plain_svc.report()
        assert fr.fused_launches > 0
        assert pr.fused_launches == 0
        assert fr.kernel_launches < pr.kernel_launches

    @pytest.mark.compiled
    def test_fused_compiled_matches_fused_numpy(self):
        _, compiled = run_service(fusion=True, playout="compiled")
        _, numpy_ = run_service(fusion=True, playout="numpy")
        for rc, rn in zip(compiled, numpy_):
            assert record_key(rc) == record_key(rn)

    def test_report_renders_fusion_metrics(self):
        service, _ = run_service(fusion=True)
        report = service.report()
        assert report.fused_launches > 0
        assert report.mean_tenants_per_launch >= 1.0
        rendered = report.render()
        assert "fused launches" in rendered
        assert "mean tenants/launch" in rendered

    def test_unfused_report_omits_fusion_rows(self):
        service, _ = run_service(fusion=False)
        assert "fused launches" not in service.report().render()


# ---------------------------------------------------------------------------
# Fusion packing properties (Hypothesis)
# ---------------------------------------------------------------------------

#: Fast vectorised games for property examples (reversi is too slow to
#: playout hundreds of times per example).
PROP_GAMES = ("tictactoe", "connect4")

tenants_strategy = st.lists(
    st.tuples(
        st.sampled_from(PROP_GAMES),
        st.integers(min_value=1, max_value=50),
    ),
    min_size=1,
    max_size=8,
)


def build_demand(tenants):
    """Per-game merged states + per-tenant spans, in tenant order --
    the same layout the service builds each tick."""
    demand: dict[str, list] = {}
    spans: dict[str, tuple[str, int, int]] = {}
    for i, (game, lanes) in enumerate(tenants):
        merged = demand.setdefault(game, [])
        lo = len(merged)
        merged.extend(states_for(game, lanes))
        spans[f"t{i}"] = (game, lo, lo + lanes)
    return demand, spans


class TestFusionPackingProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        tenants=tenants_strategy,
        max_fused_lanes=st.sampled_from([128, 256, 1 << 16]),
    )
    def test_pack_fuse_scatter_round_trips(
        self, tenants, max_fused_lanes
    ):
        """Arbitrary tenant interleavings: fused answers equal the
        unfused batcher's bit for bit (no cross-tenant leakage, no
        dropped or duplicated lanes), every launch respects the lane
        cap, and the pool drains after synchronising every lease."""
        demand, spans = build_demand(tenants)
        pool = make_pool()
        fused = FusedBatcher(
            pool, SEED, max_fused_lanes=max_fused_lanes
        )
        got, records = fused.execute_demand(
            {g: list(s) for g, s in demand.items()}, spans
        )
        ref, _ = LaneBatcher(make_pool(), SEED).execute_demand(
            {g: list(s) for g, s in demand.items()}
        )
        assert got == ref
        # Lane conservation, per game and per launch.
        for game, merged in demand.items():
            assert len(got[game]) == len(merged)
        total = sum(len(s) for s in demand.values())
        assert sum(r.lanes for r in records) == total
        for r in records:
            assert 0 < r.lanes <= max_fused_lanes
            covered = sum(hi - lo for _, lo, hi in r.spans())
            assert covered == r.lanes
        # Every tenant's span is covered by exactly one launch's
        # segments (lanes appear once across all launches).
        for game, merged in demand.items():
            seen = np.zeros(len(merged), dtype=np.int64)
            for r in records:
                for sgame, lo, hi in r.spans():
                    if sgame == game:
                        seen[lo:hi] += 1
            assert (seen == 1).all()
        for r in records:
            pool.synchronize(r.lease)
        pool.assert_drained()

    @settings(max_examples=25, deadline=None)
    @given(tenants=tenants_strategy)
    def test_fused_geometry_counters_consistent(self, tenants):
        demand, spans = build_demand(tenants)
        batcher = FusedBatcher(make_pool(), SEED)
        _, records = batcher.execute_demand(demand, spans)
        assert batcher.fused_launches == len(records)
        assert batcher.tenant_slices >= len(records)
        # Pad waste is exactly the pow2 block padding: every launch's
        # real+pad lane count is a power-of-two multiple of the block.
        tpb = FusedBatcher.FUSED_TPB
        total_real = sum(r.lanes for r in records)
        padded_total = total_real + batcher.pad_lanes
        assert padded_total % tpb == 0
        assert batcher.pad_lanes >= 0


class TestFusedGeometry:
    def test_single_lane_pads_to_one_block(self):
        batcher = FusedBatcher(make_pool(), SEED)
        batcher.execute_demand({"tictactoe": states_for("tictactoe", 1)})
        # 1 real lane -> 1 block -> already a power of two: pad is the
        # rest of the 128-wide block.
        assert batcher.pad_lanes == FusedBatcher.FUSED_TPB - 1

    def test_three_blocks_pad_to_four(self):
        batcher = FusedBatcher(make_pool(), SEED)
        batcher.execute_demand(
            {"tictactoe": states_for("tictactoe", 300)}
        )
        # 300 lanes -> 3 blocks of 128 -> padded to 4 blocks.
        assert batcher.pad_lanes == 4 * 128 - 300

    def test_lane_cap_splits_into_multiple_fused_launches(self):
        demand = {
            "tictactoe": states_for("tictactoe", 300),
            "connect4": states_for("connect4", 100),
        }
        capped = FusedBatcher(make_pool(), SEED, max_fused_lanes=128)
        got, records = capped.execute_demand(
            {g: list(s) for g, s in demand.items()}
        )
        assert len(records) == 4  # 128 + 128 + 44 | 100 lanes
        assert all(r.lanes <= 128 for r in records)
        ref, _ = LaneBatcher(make_pool(), SEED).execute_demand(demand)
        assert got == ref

    def test_lane_cap_below_block_width_rejected(self):
        with pytest.raises(ValueError, match="max_fused_lanes"):
            FusedBatcher(make_pool(), SEED, max_fused_lanes=100)

    def test_fused_kernel_spec_single_game_is_exact(self):
        assert fused_kernel_spec(["reversi"]) == playout_kernel_spec(
            "reversi"
        )

    def test_fused_kernel_spec_merges_worst_case(self):
        games = ["tictactoe", "reversi", "connect4"]
        fused = fused_kernel_spec(games)
        assert fused.name == "fused_playout"
        for game in games:
            spec = playout_kernel_spec(game)
            assert fused.cycles_per_step >= spec.cycles_per_step
            assert (
                fused.registers_per_thread >= spec.registers_per_thread
            )
            assert (
                fused.shared_mem_per_block >= spec.shared_mem_per_block
            )


# ---------------------------------------------------------------------------
# Integrity: fused readbacks screened exactly once per tenant
# ---------------------------------------------------------------------------

@pytest.mark.integrity
class TestFusedIntegrity:
    def make_guarded_batcher(self, n_tenants_expected=None):
        pool = make_pool()
        injector = FaultInjector(
            FaultPlan.parse("corrupt=0.0:bitflip,seed=3")
        )
        launcher = ResilientLauncher(pool, injector=injector)
        guard = IntegrityState(
            IntegrityPolicy.coerce(None), injector, 0
        )
        batcher = FusedBatcher(
            pool, SEED, launcher=launcher, integrity=guard
        )
        return batcher, guard

    def test_screen_called_once_per_tenant_slice(self, monkeypatch):
        batcher, guard = self.make_guarded_batcher()
        calls = []
        real_screen = guard.screen_answers

        def counting(answers):
            calls.append(len(answers))
            return real_screen(answers)

        monkeypatch.setattr(guard, "screen_answers", counting)
        tenants = [
            ("tictactoe", 10),
            ("connect4", 7),
            ("tictactoe", 5),
            ("connect4", 20),
            ("tictactoe", 1),
        ]
        demand, spans = build_demand(tenants)
        _, records = batcher.execute_demand(demand, spans)
        # Zero corrupt rate -> one delivery attempt per launch -> the
        # screen ran exactly once per tenant slice, sized per tenant.
        assert len(records) == 1
        assert len(calls) == len(tenants)
        assert sorted(calls) == sorted(n for _, n in tenants)
        assert batcher.tenant_slices == len(tenants)

    def test_corrupt_fused_run_completes_with_consistent_counters(self):
        service, records = run_service(
            fusion=True,
            faults="corrupt=0.3:bitflip,seed=5",
            integrity={"validate_results": True},
        )
        assert all(r.status in TERMINAL_STATUSES for r in records)
        guard = service.integrity_state
        # Fused screening rejects a delivery when *any* tenant slice
        # fails, so per-slice detections dominate per-delivery rejects.
        assert guard.detected >= service.launcher.rejected_results
        assert service.launcher.rejected_results > 0
        assert guard.dropped_batches <= service.batcher.launch_count

    def test_corrupt_fused_matches_corrupt_unfused_detection_path(self):
        """Same fault plan, fused vs unfused: both runs terminate and
        both screens catch corruption (the geometry changes *when*
        injector draws happen, so counters differ -- but the defense
        works under either geometry)."""
        fused_svc, fused = run_service(
            fusion=True, faults="corrupt=0.4:bitflip,seed=9"
        )
        plain_svc, plain = run_service(
            fusion=False, faults="corrupt=0.4:bitflip,seed=9"
        )
        for recs in (fused, plain):
            assert all(r.status in TERMINAL_STATUSES for r in recs)
        assert fused_svc.integrity_state.detected > 0
        assert plain_svc.integrity_state.detected > 0


# ---------------------------------------------------------------------------
# Crash -> recover with fused compiled runs
# ---------------------------------------------------------------------------

BUDGET = 4e-4


def crash_requests():
    engines = ["sequential", "root:2", "tree:2@arena", "leaf:1x32"]
    return [
        SearchRequest(
            request_id=f"r{i}",
            game="tictactoe",
            engine=eng,
            budget_s=BUDGET,
            seed=100 + i,
        )
        for i, eng in enumerate(engines)
    ]


@pytest.mark.compiled
@pytest.mark.faults
class TestFusedCompiledRecovery:
    def test_crash_then_recover_completes_exactly_once(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        service = SearchService(
            seed=5,
            n_devices=2,
            journal=path,
            checkpoint_every=5,
            faults="crash=tick:20",
            playout="compiled",
            fusion=True,
        )
        service.submit_all(crash_requests())
        with pytest.raises(ServiceCrash):
            service.run()
        pre_crash = {
            r.request.request_id: record_key(r)
            for r in service._records
            if r.status == COMPLETED
        }

        recovered = SearchService.recover(
            path,
            seed=5,
            n_devices=2,
            checkpoint_every=5,
            playout="compiled",
            fusion=True,
        )
        records = recovered.run()
        assert all(r.status == COMPLETED for r in records)
        state = read_journal(path)
        assert set(state.completions) == set(state.requests)
        by_id = {r.request.request_id: r for r in records}
        for rid, key in pre_crash.items():
            assert record_key(by_id[rid]) == key

    def test_recovery_is_deterministic(self, tmp_path):
        """Recovering the same journal twice (fused + compiled) yields
        bit-identical per-request results: the resume path is as
        deterministic as a fresh run."""
        path = tmp_path / "journal.jsonl"
        service = SearchService(
            seed=5,
            n_devices=2,
            journal=path,
            checkpoint_every=3,
            faults="crash=tick:10",
            playout="compiled",
            fusion=True,
        )
        service.submit_all(crash_requests())
        with pytest.raises(ServiceCrash):
            service.run()
        copy = tmp_path / "journal_copy.jsonl"
        copy.write_bytes(path.read_bytes())

        def recover(journal):
            svc = SearchService.recover(
                journal,
                seed=5,
                n_devices=2,
                checkpoint_every=3,
                playout="compiled",
                fusion=True,
            )
            return {
                r.request.request_id: record_key(r) for r in svc.run()
            }

        first = recover(path)
        second = recover(copy)
        assert first == second
        assert all(key[0] == COMPLETED for key in first.values())


# ---------------------------------------------------------------------------
# Pad scratch reuse (allocation-count pin)
# ---------------------------------------------------------------------------

class TestScratchReuse:
    def test_scratch_allocates_only_on_growth(self, monkeypatch):
        batcher = LaneBatcher(make_pool(), SEED)
        allocs = []
        real_zeros = scheduler_mod.np.zeros

        def counting(shape, *args, **kwargs):
            allocs.append(shape)
            return real_zeros(shape, *args, **kwargs)

        monkeypatch.setattr(scheduler_mod.np, "zeros", counting)
        a = batcher._scratch(256)
        batcher._scratch(128)
        b = batcher._scratch(256)
        assert len(allocs) == 1  # 256 -> 128 -> 256: one allocation
        assert a.base is b.base
        batcher._scratch(1024)
        assert len(allocs) == 2  # growth re-allocates, geometrically
        assert batcher._steps_scratch.shape[0] >= 1024

    def test_execute_reuses_scratch_across_launches(self):
        batcher = LaneBatcher(make_pool(), SEED)
        batcher.execute("tictactoe", states_for("tictactoe", 200))
        buf = batcher._steps_scratch
        batcher.execute("tictactoe", states_for("tictactoe", 200))
        batcher.execute("tictactoe", states_for("tictactoe", 64))
        assert batcher._steps_scratch is buf

    def test_fused_execute_reuses_scratch(self):
        batcher = FusedBatcher(make_pool(), SEED)
        demand = {
            "tictactoe": states_for("tictactoe", 200),
            "connect4": states_for("connect4", 100),
        }
        batcher.execute_demand({g: list(s) for g, s in demand.items()})
        buf = batcher._steps_scratch
        batcher.execute_demand({g: list(s) for g, s in demand.items()})
        assert batcher._steps_scratch is buf


# ---------------------------------------------------------------------------
# Fusion-aware admission
# ---------------------------------------------------------------------------

class TestFusionAdmission:
    def hopeless_request(self):
        # The pool's tick floor (launch + readback latency) is ~18us;
        # a 1us deadline can never be met.
        return SearchRequest(
            request_id="r0",
            game="tictactoe",
            engine="root:2",
            budget_s=1e-3,
            seed=1,
            deadline_s=1e-6,
        )

    def test_admission_rejects_hopeless_deadline_before_launching(self):
        service = SearchService(
            seed=7, n_devices=1, fusion_admission=True
        )
        service.submit(self.hopeless_request())
        (record,) = service.run()
        assert record.status == MISSED
        assert service.batcher.launch_count == 0

    def test_without_admission_the_launch_is_wasted(self):
        service = SearchService(
            seed=7, n_devices=1, fusion_admission=False
        )
        service.submit(self.hopeless_request())
        (record,) = service.run()
        assert record.status == MISSED
        assert service.batcher.launch_count >= 1

    def test_admission_floor_is_positive_and_cheap(self):
        batcher = FusedBatcher(make_pool(), SEED)
        floor = batcher.tick_floor_s()
        spec = TESLA_C2050
        assert floor == pytest.approx(
            spec.kernel_launch_latency_s + spec.transfer_latency_s
        )

    def test_admission_never_touches_meetable_deadlines(self):
        reqs = make_workload(
            WorkloadConfig(n_requests=12, seed=3, deadline_s=5.0)
        )
        on = SearchService(seed=7, n_devices=2, fusion_admission=True)
        on.submit_all(reqs)
        off = SearchService(seed=7, n_devices=2, fusion_admission=False)
        off.submit_all(
            make_workload(
                WorkloadConfig(n_requests=12, seed=3, deadline_s=5.0)
            )
        )
        got = [record_key(r) for r in on.run()]
        want = [record_key(r) for r in off.run()]
        assert got == want
