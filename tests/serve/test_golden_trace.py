"""Golden-trace regression for the service scheduler.

A tiny fixed-seed service run is projected to its Chrome trace event
sequence -- per-track span names, holders and microsecond timestamps
-- and compared against a checked-in golden JSON.  Any change to
placement order, span naming, tick cadence or timing model shows up as
a diff here before it shows up as a silent behaviour change.

To intentionally update the golden after a deliberate scheduler
change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/serve/test_golden_trace.py
"""

import json
import os
from pathlib import Path

from repro.gpu.trace import Tracer
from repro.serve import SearchService, WorkloadConfig, make_workload

GOLDEN_PATH = Path(__file__).parent / "golden" / "service_trace.json"


def run_tiny_service() -> Tracer:
    tracer = Tracer()
    workload = make_workload(
        WorkloadConfig(
            n_requests=6,
            seed=5,
            budget_scale=0.25,
            deadline_s=None,
        )
    )
    service = SearchService(n_devices=2, seed=5, tracer=tracer)
    service.submit_all(workload)
    service.run()
    return tracer


def project(tracer: Tracer) -> dict:
    """The trace's regression-relevant shape: per-track ordered spans
    with stable-rounded microsecond timestamps."""
    tracks: dict[str, list] = {}
    for event in tracer.events:
        tracks.setdefault(event.track, []).append(
            {
                "name": event.name,
                "holder": event.args.get("holder"),
                "ts_us": round(event.start_s * 1e6, 3),
                "dur_us": round(event.duration_s * 1e6, 3),
            }
        )
    for spans in tracks.values():
        spans.sort(key=lambda s: (s["ts_us"], s["name"]))
    return {"tracks": tracks, "events": len(tracer.events)}


def test_service_trace_matches_golden():
    projected = project(run_tiny_service())
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(projected, indent=2, sort_keys=True) + "\n"
        )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert projected["events"] == golden["events"]
    assert set(projected["tracks"]) == set(golden["tracks"])
    for track, spans in golden["tracks"].items():
        assert projected["tracks"][track] == spans, (
            f"trace diverged on track {track!r}"
        )


def test_projection_is_deterministic():
    assert project(run_tiny_service()) == project(run_tiny_service())
