"""The elastic device fleet and both autoscaling control loops."""

import pytest

from repro.gpu import TESLA_C2050, DevicePool, PoolError
from repro.serve import (
    Autoscaler,
    AutoscalerConfig,
    ShardAutoscaler,
    ShardAutoscalerConfig,
)
from repro.util.clock import Clock


def make_pool(n=2):
    clock = Clock()
    return DevicePool((TESLA_C2050,) * n, clock), clock


# -- elastic pool ------------------------------------------------------------


class TestElasticPool:
    def test_provision_respects_bring_up_lag(self):
        pool, clock = make_pool(1)
        new_id = pool.provision(TESLA_C2050, available_s=0.05)
        assert new_id == 1
        assert pool.active_size() == 2  # paid for immediately...
        assert pool.placeable_ids() == [0]  # ...placeable later
        assert pool.available_after(new_id) == 0.05
        clock.advance(0.05)
        assert pool.placeable_ids() == [0, 1]

    def test_provision_into_the_past_rejected(self):
        pool, clock = make_pool(1)
        clock.advance(1.0)
        with pytest.raises(PoolError, match="past"):
            pool.provision(TESLA_C2050, available_s=0.5)

    def test_least_busy_never_places_on_lagging_device(self):
        pool, clock = make_pool(1)
        pool.provision(TESLA_C2050, available_s=1.0)
        # Device 0 is busy; the fresh device would win on idleness
        # but is still inside its bring-up lag.
        pool.launch("req", 1e-3)
        assert pool.least_busy() == 0
        clock.advance(1.0)
        assert pool.least_busy() == 1

    def test_retire_drains_but_never_places(self):
        pool, clock = make_pool(2)
        lease = pool.launch("req", 1e-3, device_id=1)
        pool.retire(1)
        pool.retire(1)  # idempotent
        assert pool.is_retired(1)
        assert pool.active_size() == 1
        assert pool.placeable_ids() == [0]
        assert pool.least_busy() == 0
        # In-flight work on the retiree still resolves.
        clock.advance_to(lease.event.done_at)
        pool.synchronize(lease)
        pool.assert_drained()


# -- device-fleet control loop -----------------------------------------------


class TestAutoscaler:
    def cfg(self, **kw):
        base = dict(
            min_devices=1,
            max_devices=4,
            interval_s=0.01,
            scaleup_lag_s=0.05,
            cooldown_s=0.0,
        )
        base.update(kw)
        return AutoscalerConfig(**base)

    def test_scales_up_under_pressure_with_lag(self):
        pool, clock = make_pool(2)
        scaler = Autoscaler(pool, self.cfg(), TESLA_C2050)
        assert scaler.step(0.0, ratio_p99=2.0, queue_frac=0.0) == 1
        assert scaler.scale_ups == 1
        assert pool.active_size() == 3
        assert pool.available_after(2) == pytest.approx(0.05)

    def test_interval_and_cooldown_gate_decisions(self):
        pool, clock = make_pool(1)
        scaler = Autoscaler(
            pool, self.cfg(cooldown_s=0.1), TESLA_C2050
        )
        assert scaler.step(0.0, 2.0, 1.0) == 1
        # Too soon (interval), then inside the cooldown.
        assert scaler.step(0.005, 2.0, 1.0) == 0
        assert scaler.step(0.05, 2.0, 1.0) == 0
        # Past the cooldown: acts again.
        assert scaler.step(0.11, 2.0, 1.0) == 1
        assert scaler.scale_ups == 2

    def test_scale_up_capped_at_max_devices(self):
        pool, clock = make_pool(4)
        scaler = Autoscaler(pool, self.cfg(), TESLA_C2050)
        assert scaler.step(0.0, 2.0, 1.0) == 0
        assert scaler.scale_ups == 0

    def test_scales_down_when_calm_and_floor_holds(self):
        pool, clock = make_pool(3)
        scaler = Autoscaler(pool, self.cfg(), TESLA_C2050)
        assert scaler.step(0.0, 0.0, 0.0) == -1
        assert pool.is_retired(2)  # highest-numbered goes first
        assert scaler.step(0.02, 0.0, 0.0) == -1
        assert scaler.step(0.04, 0.0, 0.0) == 0  # at min_devices
        assert scaler.scale_downs == 2

    def test_queue_pressure_alone_triggers_scale_up(self):
        pool, clock = make_pool(1)
        scaler = Autoscaler(pool, self.cfg(), TESLA_C2050)
        assert scaler.step(0.0, ratio_p99=0.0, queue_frac=0.9) == 1

    def test_peak_devices_tracks_high_water_mark(self):
        pool, clock = make_pool(1)
        scaler = Autoscaler(pool, self.cfg(), TESLA_C2050)
        scaler.step(0.0, 2.0, 1.0)
        scaler.step(0.02, 2.0, 1.0)
        assert scaler.peak_devices == 3
        scaler.step(0.04, 0.0, 0.0)
        assert scaler.peak_devices == 3

    def test_config_validation_and_coerce(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_devices=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_devices=4, max_devices=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_down_frac=1.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(interval_s=0.0)
        assert AutoscalerConfig.coerce(None) is None
        assert AutoscalerConfig.coerce(False) is None
        assert AutoscalerConfig.coerce(True) == AutoscalerConfig()
        assert (
            AutoscalerConfig.coerce({"max_devices": 8}).max_devices
            == 8
        )
        cfg = AutoscalerConfig()
        assert AutoscalerConfig.coerce(cfg) is cfg
        with pytest.raises(TypeError):
            AutoscalerConfig.coerce(3.14)


# -- shard-count control loop ------------------------------------------------


class TestShardAutoscaler:
    def test_band_semantics(self):
        scaler = ShardAutoscaler(
            ShardAutoscalerConfig(
                min_shards=1,
                max_shards=4,
                attainment_low=0.95,
                attainment_high=0.995,
            )
        )
        assert scaler.next_count(2, 0.5) == 3  # below band: grow
        assert scaler.next_count(2, 0.97) == 2  # inside band: hold
        assert scaler.next_count(2, 1.0) == 1  # above band: shrink
        assert scaler.next_count(4, 0.0) == 4  # capped at max
        assert scaler.next_count(1, 1.0) == 1  # floored at min
        assert scaler.scale_ups == 1
        assert scaler.scale_downs == 1

    def test_out_of_range_current_clamped(self):
        scaler = ShardAutoscaler(
            ShardAutoscalerConfig(min_shards=2, max_shards=4)
        )
        assert scaler.next_count(9, 0.97) == 4
        assert scaler.next_count(1, 0.97) == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ShardAutoscalerConfig(min_shards=0)
        with pytest.raises(ValueError):
            ShardAutoscalerConfig(min_shards=4, max_shards=2)
        with pytest.raises(ValueError):
            ShardAutoscalerConfig(
                attainment_low=0.99, attainment_high=0.95
            )
        with pytest.raises(ValueError):
            ShardAutoscalerConfig(step=0)
