"""Fault-injection subsystem + resilient serving (repro.faults,
repro.serve.resilience)."""

import pytest

from repro.faults import (
    KIND_LAUNCH_FAIL,
    KIND_LOST_RESULT,
    KIND_MPI_DROP,
    KIND_OUTAGE,
    KIND_STALL,
    DeviceOutage,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
)
from repro.gpu import TESLA_C2050, DevicePool
from repro.gpu.trace import Tracer
from repro.serve import (
    ResilientLauncher,
    RetryPolicy,
    SearchRequest,
    SearchService,
)
from repro.serve.resilience import KIND_TIMEOUT
from repro.util.clock import Clock

pytestmark = pytest.mark.faults


class TestFaultPlan:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "launch=0.1, lost=0.05, stall=0.02x8, "
            "outage=1@0.5+0.2, drop=0.01, seed=7"
        )
        assert plan.launch_fail_rate == 0.1
        assert plan.lost_result_rate == 0.05
        assert plan.stall_rate == 0.02
        assert plan.stall_factor == 8.0
        assert plan.mpi_drop_rate == 0.01
        assert plan.outages == (DeviceOutage(1, 0.5, 0.2),)
        assert plan.seed == 7

    def test_parse_accumulates_multiple_outages(self):
        plan = FaultPlan.parse("outage=0@0.1+0.1,outage=2@0.3+0.5")
        assert len(plan.outages) == 2
        assert plan.outages[1] == DeviceOutage(2, 0.3, 0.5)

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(FaultPlanError, match="unknown fault plan key"):
            FaultPlan.parse("explode=0.5")

    def test_parse_rejects_malformed_entries(self):
        for bad in ("launch", "launch=abc", "outage=1@0.5", ""):
            with pytest.raises(FaultPlanError):
                FaultPlan.parse(bad)

    def test_rates_validated(self):
        with pytest.raises(FaultPlanError, match=r"\[0, 1\]"):
            FaultPlan(launch_fail_rate=1.5)
        with pytest.raises(FaultPlanError, match="sum"):
            FaultPlan(launch_fail_rate=0.6, lost_result_rate=0.6)
        with pytest.raises(FaultPlanError, match="stall factor"):
            FaultPlan(stall_rate=0.1, stall_factor=1.0)

    def test_outage_validated(self):
        with pytest.raises(FaultPlanError, match="duration"):
            DeviceOutage(0, 0.0, 0.0)

    def test_scaled_multiplies_rates_and_clamps(self):
        plan = FaultPlan.parse("launch=0.4,drop=0.3")
        assert plan.scaled(2.0).launch_fail_rate == pytest.approx(0.8)
        assert plan.scaled(0.0).injects_anything is False
        assert plan.scaled(10.0).launch_fail_rate == 1.0

    def test_coerce(self):
        assert FaultPlan.coerce(None) is None
        plan = FaultPlan(seed=3)
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce("seed=3") == plan
        with pytest.raises(FaultPlanError, match="must be"):
            FaultPlan.coerce(42)

    def test_injects_anything(self):
        assert not FaultPlan().injects_anything
        assert not FaultPlan(seed=99).injects_anything
        assert FaultPlan(stall_rate=0.1).injects_anything
        assert FaultPlan(
            outages=(DeviceOutage(0, 0.0, 1.0),)
        ).injects_anything


class TestFaultInjector:
    def test_decisions_deterministic_under_seed(self):
        plan = FaultPlan.parse("launch=0.2,lost=0.1,stall=0.1x4,seed=7")
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        faults_a = [a.launch_fault(0, 0.0) for _ in range(200)]
        faults_b = [b.launch_fault(0, 0.0) for _ in range(200)]
        assert faults_a == faults_b
        assert a.counters == b.counters

    def test_different_seeds_differ(self):
        def draws(seed):
            inj = FaultInjector(
                FaultPlan(launch_fail_rate=0.5, seed=seed)
            )
            return [inj.launch_fault(0, 0.0) for _ in range(64)]

        assert draws(1) != draws(2)

    def test_zero_rates_consume_no_draws(self):
        inj = FaultInjector(FaultPlan(seed=5))
        for _ in range(50):
            assert inj.launch_fault(0, 0.0) is None
            assert inj.drop_message() is False
        assert inj.total_injected == 0
        assert inj.injected() == {}

    def test_rates_roughly_respected(self):
        inj = FaultInjector(
            FaultPlan.parse("launch=0.2,lost=0.1,stall=0.1x4,seed=3")
        )
        n = 2000
        for _ in range(n):
            inj.launch_fault(0, 0.0)
        assert inj.counters[KIND_LAUNCH_FAIL] / n == pytest.approx(
            0.2, abs=0.05
        )
        assert inj.counters[KIND_LOST_RESULT] / n == pytest.approx(
            0.1, abs=0.04
        )
        assert inj.counters[KIND_STALL] / n == pytest.approx(
            0.1, abs=0.04
        )

    def test_stall_carries_the_plan_factor(self):
        inj = FaultInjector(FaultPlan(stall_rate=1.0, stall_factor=6.0))
        fault = inj.launch_fault(0, 0.0)
        assert fault.kind == KIND_STALL
        assert fault.factor == 6.0

    def test_outage_takes_precedence_and_consumes_no_draw(self):
        plan = FaultPlan(
            launch_fail_rate=0.5,
            outages=(DeviceOutage(1, 0.0, 1.0),),
            seed=9,
        )
        inj = FaultInjector(plan)
        fault = inj.launch_fault(1, 0.5)
        assert fault.kind == KIND_OUTAGE
        # Same draw counter as a fresh injector: the outage decision
        # did not consume a launch draw.
        fresh = FaultInjector(plan)
        assert inj.launch_fault(0, 2.0) == fresh.launch_fault(0, 2.0)

    def test_outage_window_boundaries(self):
        inj = FaultInjector(
            FaultPlan(outages=(DeviceOutage(0, 0.5, 0.2),))
        )
        assert inj.outage_at(0, 0.49) is None
        assert inj.outage_at(0, 0.5) is not None
        assert inj.outage_at(0, 0.69) is not None
        assert inj.outage_at(0, 0.7) is None
        assert inj.outage_at(1, 0.6) is None

    def test_mpi_draws_independent_of_launch_draws(self):
        plan = FaultPlan.parse("launch=0.3,drop=0.3,seed=11")
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        # Interleave differently; per-tag counters keep decisions equal.
        drops_a = [a.drop_message() for _ in range(20)]
        [a.launch_fault(0, 0.0) for _ in range(20)]
        [b.launch_fault(0, 0.0) for _ in range(20)]
        drops_b = [b.drop_message() for _ in range(20)]
        assert drops_a == drops_b


def make_launcher(plan=None, n=2, policy=None, **pool_kwargs):
    clock = Clock()
    pool = DevicePool(
        (TESLA_C2050,) * n, clock, Tracer(), **pool_kwargs
    )
    injector = FaultInjector(plan) if plan is not None else None
    return (
        ResilientLauncher(pool, policy=policy, injector=injector),
        pool,
        clock,
    )


class TestResilientLauncher:
    def test_clean_launch_single_attempt(self):
        launcher, pool, _ = make_launcher()
        outcome = launcher.launch("req", lambda spec: 1e-3)
        assert outcome.delivered
        assert outcome.retries == 0
        assert outcome.ready_s == pytest.approx(1e-3)
        assert launcher.retries == 0
        pool.synchronize(outcome.lease)
        pool.assert_drained()

    def test_launch_failures_retry_on_other_devices(self):
        # Deterministic all-fail window: device 0 is down; the first
        # attempt there fails fast and the retry lands on device 1.
        plan = FaultPlan(outages=(DeviceOutage(0, 0.0, 1.0),))
        launcher, pool, _ = make_launcher(plan)
        outcome = launcher.launch("req", lambda spec: 1e-3)
        assert outcome.delivered
        assert outcome.retries == 1
        assert outcome.attempts[0].fault == KIND_OUTAGE
        assert outcome.attempts[0].device_id == 0
        assert outcome.attempts[1].device_id == 1
        assert outcome.wasted_wait_s > 0
        pool.synchronize(outcome.lease)
        pool.assert_drained()

    def test_backoff_delays_each_retry(self):
        plan = FaultPlan(
            outages=(
                DeviceOutage(0, 0.0, 1.0),
                DeviceOutage(1, 0.0, 1.0),
            )
        )
        policy = RetryPolicy(max_retries=3, backoff_base_s=1e-4)
        launcher, _, _ = make_launcher(plan, policy=policy)
        outcome = launcher.launch("req", lambda spec: 1e-3)
        assert not outcome.delivered
        starts = [a.start_s for a in outcome.attempts]
        assert starts == sorted(starts)
        # Exponential backoff: gaps grow between consecutive attempts.
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert all(g2 > g1 for g1, g2 in zip(gaps, gaps[1:]))

    def test_exhausted_chain_reported_lost_not_raised(self):
        plan = FaultPlan(
            outages=(
                DeviceOutage(0, 0.0, 10.0),
                DeviceOutage(1, 0.0, 10.0),
            )
        )
        launcher, pool, _ = make_launcher(plan)
        outcome = launcher.launch("req", lambda spec: 1e-3)
        assert not outcome.delivered
        assert outcome.lease is None
        assert outcome.retries == launcher.policy.max_retries
        assert launcher.lost_launches == 1
        pool.assert_drained()  # failed attempts left nothing unresolved

    def test_short_stall_absorbed_within_timeout(self):
        plan = FaultPlan(stall_rate=1.0, stall_factor=2.0)
        policy = RetryPolicy(timeout_factor=3.0)
        launcher, pool, _ = make_launcher(plan, policy=policy)
        outcome = launcher.launch("req", lambda spec: 1e-3)
        assert outcome.delivered
        assert outcome.retries == 0
        assert outcome.attempts[0].fault == KIND_STALL
        assert outcome.ready_s == pytest.approx(2e-3)
        pool.synchronize(outcome.lease)
        pool.assert_drained()

    def test_long_stall_times_out_and_retries(self):
        # 8x stall vs 3x timeout: abandoned at the timeout, re-placed.
        plan = FaultPlan(
            stall_rate=1.0, stall_factor=8.0, seed=1
        )
        launcher, pool, clock = make_launcher(plan)
        outcome = launcher.launch("req", lambda spec: 1e-3)
        first = outcome.attempts[0]
        assert first.fault == KIND_TIMEOUT
        assert first.detect_s == pytest.approx(
            first.start_s + launcher.policy.timeout_s(1e-3)
        )
        # The stalled kernel still occupied its stream to the full 8ms.
        assert pool.busy_seconds(first.device_id) >= 8e-3
        if outcome.delivered:
            pool.synchronize(outcome.lease)
        pool.assert_drained()

    def test_lost_result_detected_at_timeout(self):
        plan = FaultPlan(lost_result_rate=1.0)
        policy = RetryPolicy(max_retries=0)
        launcher, pool, _ = make_launcher(plan, policy=policy)
        outcome = launcher.launch("req", lambda spec: 1e-3)
        assert not outcome.delivered
        attempt = outcome.attempts[0]
        assert attempt.fault == KIND_LOST_RESULT
        assert attempt.detect_s == pytest.approx(
            attempt.start_s + policy.timeout_s(1e-3)
        )
        pool.assert_drained()

    def test_repeated_failures_quarantine_the_device(self):
        plan = FaultPlan(outages=(DeviceOutage(0, 0.0, 10.0),))
        launcher, pool, _ = make_launcher(
            plan, quarantine_after=2, quarantine_s=1.0
        )
        for _ in range(2):
            outcome = launcher.launch("req", lambda spec: 1e-4)
            pool.synchronize(outcome.lease)
        assert pool.is_quarantined(0)
        # Placement now avoids device 0 outright: no more attempts hit
        # the dead device, so no retries are needed.
        before = launcher.retries
        outcome = launcher.launch("req", lambda spec: 1e-4)
        assert launcher.retries == before
        assert outcome.attempts[0].device_id == 1
        pool.synchronize(outcome.lease)
        pool.assert_drained()

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="timeout factor"):
            RetryPolicy(timeout_factor=0.5)
        with pytest.raises(ValueError, match="backoff factor"):
            RetryPolicy(backoff_factor=0.9)

    def test_no_injector_is_pure_passthrough(self):
        launcher, pool, _ = make_launcher(None)
        plain_pool = DevicePool((TESLA_C2050,) * 2, Clock(), Tracer())
        for i in range(6):
            outcome = launcher.launch(f"r{i}", lambda spec: 1e-3)
            plain = plain_pool.launch(f"r{i}", 1e-3)
            assert outcome.lease.device_id == plain.device_id
            assert outcome.lease.start_s == plain.start_s
            assert outcome.lease.end_s == plain.end_s


def _request(rid="r0", engine="root:2", deadline=None, **kwargs):
    return SearchRequest(
        request_id=rid,
        game="tictactoe",
        engine=engine,
        budget_s=5e-4,
        seed=7,
        deadline_s=deadline,
        **kwargs,
    )


class TestServiceUnderFaults:
    def test_outage_survived_by_replacement(self):
        service = SearchService(
            n_devices=2,
            seed=0,
            faults=FaultPlan(outages=(DeviceOutage(0, 0.0, 10.0),)),
        )
        service.submit(_request())
        records = service.run()
        assert records[0].status == "completed"
        report = service.report()
        assert report.faults_injected.get(KIND_OUTAGE, 0) > 0
        assert report.completion_rate == 1.0

    def test_direct_engine_survives_retry_exhaustion_degraded(self):
        # Every device down forever: the block engine's modelled
        # execution can never be placed, but the computed result is
        # salvaged and the request completes degraded.
        service = SearchService(
            n_devices=2,
            seed=0,
            faults=FaultPlan(
                outages=(
                    DeviceOutage(0, 0.0, 100.0),
                    DeviceOutage(1, 0.0, 100.0),
                )
            ),
        )
        service.submit(_request(engine="block:2x32"))
        records = service.run()
        assert records[0].status == "completed"
        assert records[0].degraded
        assert records[0].result is not None
        report = service.report()
        assert report.degraded == 1
        assert report.lost_launches >= 1

    def test_mpi_drop_counted_in_multigpu_extras(self):
        service = SearchService(
            n_devices=2,
            seed=0,
            faults=FaultPlan(mpi_drop_rate=1.0, seed=3),
        )
        service.submit(_request(engine="multigpu:2x2x16"))
        records = service.run()
        assert records[0].status == "completed"
        extras = records[0].result.extras
        # Both reductions (visits, wins) drop the non-root rank.
        assert extras["mpi.dropped_messages"] == 2
        assert service.report().faults_injected[KIND_MPI_DROP] == 2

    def test_metrics_row_rendering_under_faults(self):
        service = SearchService(
            n_devices=2,
            seed=0,
            faults="launch=0.5,seed=13",
        )
        service.submit(_request())
        service.run()
        rendered = service.report().render()
        assert "launch retries" in rendered
        assert "faults: launch_fail" in rendered

    def test_fault_spans_visible_in_trace(self):
        tracer = Tracer()
        service = SearchService(
            n_devices=2,
            seed=0,
            tracer=tracer,
            faults=FaultPlan(outages=(DeviceOutage(0, 0.0, 10.0),)),
        )
        service.submit(_request())
        service.run()
        fault_spans = [
            e for e in tracer.events if "!" in e.name
        ]
        assert fault_spans
        assert all(
            e.args.get("fault") == KIND_OUTAGE for e in fault_spans
        )

    def test_deadline_miss_under_faults_resolves_leases(self):
        # A missed direct-path request must abandon its lease: run()
        # asserts the pool drained, so surviving run() is the test.
        service = SearchService(
            n_devices=1,
            seed=0,
            faults="stall=1.0x16,seed=5",
            retry=RetryPolicy(max_retries=0, timeout_factor=100.0),
        )
        service.submit(_request(engine="block:2x32", deadline=1e-5))
        records = service.run()
        assert records[0].status == "missed"

    def test_injection_deterministic_across_service_runs(self):
        def run():
            service = SearchService(
                n_devices=2,
                seed=0,
                faults="launch=0.2,lost=0.1,stall=0.1x8,seed=21",
            )
            for i in range(4):
                service.submit(
                    _request(rid=f"r{i}", engine="root:2")
                )
            service.run()
            report = service.report()
            return (
                report,
                [r.lost_lanes for r in service.records],
                service.launcher.failed_attempts,
            )

        assert run() == run()
