"""Closed-loop clients: retries, breakers, throttles, budgets, traps.

The client layer (repro.serve.clients) closes the feedback loop the
open-loop storms left open: every SHED / REJECTED / MISSED outcome
may come back as a retry, and the defenses -- per-client circuit
breakers, adaptive throttling, the server-side retry budget -- are
what keep that loop from locking the service into a metastable
state.  Everything is seeded; storms must replay bit-identically.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    COMPLETED,
    MISSED,
    REJECTED,
    SHED,
    BreakerConfig,
    CircuitBreaker,
    ClientConfig,
    ClientPopulation,
    ClientRetryPolicy,
    FlashCrowd,
    MetastabilityDetector,
    RequestRecord,
    RetryBudget,
    SearchRequest,
    StormConfig,
    ThrottleConfig,
    TraceConfig,
    WorkloadConfig,
    attempt_of,
    lineage_root,
    post_crowd_attainment,
    retry_id,
    run_storm,
    tenant_of,
)
from repro.serve.clients import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdaptiveThrottle,
    client_uniform,
)


def request(
    rid: str = "t03-r0",
    priority: str = "standard",
    arrival_s: float = 0.0,
    deadline_s: float | None = 0.1,
) -> SearchRequest:
    return SearchRequest(
        request_id=rid,
        game="reversi",
        engine="sequential",
        budget_s=0.001,
        seed=7,
        arrival_s=arrival_s,
        deadline_s=deadline_s,
        priority=priority,
    )


def record(status: str, **kwargs) -> RequestRecord:
    return RequestRecord(request=request(**kwargs), status=status)


# -- attempt lineage on request ids ------------------------------------------


class TestLineage:
    def test_roundtrip(self):
        assert lineage_root("t03-mix0042") == "t03-mix0042"
        assert lineage_root("t03-mix0042~a2") == "t03-mix0042"
        assert attempt_of("t03-mix0042") == 0
        assert attempt_of("t03-mix0042~a2") == 2
        assert retry_id("t03-mix0042", 1) == "t03-mix0042~a1"
        # Retrying a retry keeps one flat lineage, never ~a1~a2.
        assert retry_id("t03-mix0042~a1", 2) == "t03-mix0042~a2"

    def test_retry_id_rejects_attempt_zero(self):
        with pytest.raises(ValueError):
            retry_id("x", 0)

    def test_non_lineage_ids_pass_through(self):
        assert lineage_root("plain~alpha") == "plain~alpha"
        assert attempt_of("plain~alpha") == 0

    def test_tenant_of(self):
        assert tenant_of("t03-mix0042") == "t03"
        assert tenant_of("t128-x~a4") == "t128"
        assert tenant_of("req-17") is None
        assert tenant_of("tx-17") is None


# -- the retry policy --------------------------------------------------------


class TestClientRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClientRetryPolicy(kind="quadratic")
        with pytest.raises(ValueError):
            ClientRetryPolicy(base_s=-0.1)
        with pytest.raises(ValueError):
            ClientRetryPolicy(factor=0.5)
        with pytest.raises(ValueError):
            ClientRetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            ClientRetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            ClientRetryPolicy(give_up_s=(("batch", 0.0),))

    def test_coerce_forms(self):
        assert ClientRetryPolicy.coerce(None) is None
        assert ClientRetryPolicy.coerce("fixed").kind == "fixed"
        assert (
            ClientRetryPolicy.coerce({"kind": "immediate"}).kind
            == "immediate"
        )
        policy = ClientRetryPolicy()
        assert ClientRetryPolicy.coerce(policy) is policy
        with pytest.raises(TypeError):
            ClientRetryPolicy.coerce(42)

    def test_none_and_immediate_have_zero_backoff(self):
        for kind in ("none", "immediate"):
            policy = ClientRetryPolicy(kind=kind, jitter=0.0)
            assert policy.backoff_s(0, "r", 1) == 0.0
            assert policy.backoff_s(0, "r", 3) == 0.0

    def test_fixed_backoff_is_base(self):
        policy = ClientRetryPolicy(
            kind="fixed", base_s=0.03, jitter=0.0
        )
        assert policy.backoff_s(0, "r", 1) == pytest.approx(0.03)
        assert policy.backoff_s(0, "r", 5) == pytest.approx(0.03)

    def test_exponential_doubles_then_caps(self):
        policy = ClientRetryPolicy(
            kind="exponential",
            base_s=0.01,
            factor=2.0,
            cap_s=0.05,
            jitter=0.0,
        )
        delays = [policy.backoff_s(0, "r", a) for a in (1, 2, 3, 4)]
        assert delays == pytest.approx([0.01, 0.02, 0.04, 0.05])

    def test_backoff_rejects_attempt_zero(self):
        with pytest.raises(ValueError):
            ClientRetryPolicy().backoff_s(0, "r", 0)

    def test_give_up_for(self):
        policy = ClientRetryPolicy(give_up_s=(("batch", 2.0),))
        assert policy.give_up_for("batch") == 2.0
        assert policy.give_up_for("interactive") is None

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        attempt=st.integers(min_value=1, max_value=12),
        root=st.text(min_size=1, max_size=8),
        jitter=st.floats(min_value=0.0, max_value=0.9),
    )
    def test_jitter_is_deterministic_and_bounded(
        self, seed, attempt, root, jitter
    ):
        """Backoff is a pure function of (seed, lineage, attempt) and
        jitter stays inside its advertised envelope -- the property
        that makes retry storms replay bit-identically."""
        policy = ClientRetryPolicy(
            kind="exponential",
            base_s=0.01,
            cap_s=0.16,
            jitter=jitter,
        )
        once = policy.backoff_s(seed, root, attempt)
        again = policy.backoff_s(seed, root, attempt)
        assert once == again
        nominal = min(0.16, 0.01 * 2.0 ** (attempt - 1))
        assert nominal * (1 - jitter) <= once <= nominal * (1 + jitter)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        path=st.lists(
            st.text(min_size=1, max_size=6), min_size=1, max_size=3
        ),
    )
    def test_client_uniform_in_unit_interval(self, seed, path):
        u = client_uniform(seed, *path)
        assert 0.0 < u < 1.0
        assert u == client_uniform(seed, *path)


# -- the circuit breaker -----------------------------------------------------


class TestCircuitBreaker:
    def make(self, **kwargs) -> CircuitBreaker:
        defaults = dict(
            failure_threshold=3,
            reset_timeout_s=0.1,
            half_open_probes=1,
        )
        defaults.update(kwargs)
        return CircuitBreaker(BreakerConfig(**defaults))

    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(reset_timeout_s=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(half_open_probes=0)

    def test_trips_on_consecutive_failures_only(self):
        breaker = self.make()
        breaker.on_failure(0.0)
        breaker.on_failure(0.0)
        breaker.on_success(0.0)  # resets the streak
        breaker.on_failure(0.0)
        breaker.on_failure(0.0)
        assert breaker.state == BREAKER_CLOSED
        breaker.on_failure(0.0)
        assert breaker.state == BREAKER_OPEN
        assert breaker.opens == 1

    def test_open_blocks_until_dwell_then_half_opens(self):
        breaker = self.make()
        for _ in range(3):
            breaker.on_failure(0.0)
        assert not breaker.allow(0.05)
        assert breaker.state == BREAKER_OPEN
        assert breaker.allow(0.11)  # dwell elapsed: probe admitted
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow(0.12)  # only one probe

    def test_half_open_probe_success_closes(self):
        breaker = self.make()
        for _ in range(3):
            breaker.on_failure(0.0)
        assert breaker.allow(0.2)
        breaker.on_success(0.2)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.closes == 1
        assert breaker.allow(0.2)

    def test_half_open_probe_failure_reopens(self):
        breaker = self.make()
        for _ in range(3):
            breaker.on_failure(0.0)
        assert breaker.allow(0.2)
        breaker.on_failure(0.2)
        assert breaker.state == BREAKER_OPEN
        assert breaker.opens == 2
        assert not breaker.allow(0.25)
        assert breaker.allow(0.31)  # new dwell from the re-open


# -- the adaptive throttle ---------------------------------------------------


class TestAdaptiveThrottle:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThrottleConfig(k=0.0)
        with pytest.raises(ValueError):
            ThrottleConfig(window=0)

    def test_healthy_server_never_throttled(self):
        throttle = AdaptiveThrottle(ThrottleConfig(k=2.0, window=8))
        assert throttle.reject_probability() == 0.0
        for _ in range(8):
            throttle.observe(True)
        assert throttle.reject_probability() == 0.0

    def test_rejection_probability_rises_with_pushback(self):
        throttle = AdaptiveThrottle(ThrottleConfig(k=2.0, window=16))
        for _ in range(16):
            throttle.observe(False)
        assert throttle.reject_probability() == pytest.approx(
            16 / 17
        )

    def test_window_forgets_old_outcomes(self):
        throttle = AdaptiveThrottle(ThrottleConfig(k=2.0, window=4))
        for _ in range(10):
            throttle.observe(False)
        for _ in range(4):
            throttle.observe(True)
        assert throttle.reject_probability() == 0.0


# -- the server-side retry budget --------------------------------------------


class TestRetryBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(fill_per_first_try=-0.1)
        with pytest.raises(ValueError):
            RetryBudget(cap=0.0)
        with pytest.raises(ValueError):
            RetryBudget(initial=-1.0)

    def test_spend_needs_a_whole_token(self):
        budget = RetryBudget(
            fill_per_first_try=0.5, cap=5.0, initial=0.0
        )
        assert not budget.spend()
        budget.on_first_try()
        assert not budget.spend()  # 0.5 tokens
        budget.on_first_try()
        assert budget.spend()  # 1.0 -> 0.0
        assert budget.granted == 1
        assert budget.rejected == 2

    def test_fill_caps(self):
        budget = RetryBudget(
            fill_per_first_try=1.0, cap=2.0, initial=2.0
        )
        for _ in range(10):
            budget.on_first_try()
        assert budget.tokens == 2.0

    def test_sustained_retry_rate_capped_by_fill(self):
        """Long-run: admitted retries per first-try converge to the
        fill rate -- the property that breaks the storm feedback."""
        budget = RetryBudget(
            fill_per_first_try=0.2, cap=10.0, initial=0.0
        )
        granted = 0
        for _ in range(1000):
            budget.on_first_try()
            if budget.spend():
                granted += 1
        assert granted == pytest.approx(200, abs=10)

    def test_coerce(self):
        assert RetryBudget.coerce(None) is None
        assert RetryBudget.coerce(False) is None
        assert isinstance(RetryBudget.coerce(True), RetryBudget)
        assert RetryBudget.coerce({"cap": 3.0}).cap == 3.0
        budget = RetryBudget()
        assert RetryBudget.coerce(budget) is budget


# -- the population's feedback seam ------------------------------------------


def population(**overrides) -> ClientPopulation:
    config = dict(
        retry=dict(
            kind="fixed",
            base_s=0.01,
            jitter=0.0,
            max_attempts=3,
            give_up_s=(("standard", 1.0),),
        ),
        seed=5,
    )
    config.update(overrides)
    return ClientPopulation.coerce(config)


class TestClientPopulation:
    def test_completion_never_retries(self):
        clients = population()
        assert clients.on_outcome(record(COMPLETED), 0.01) is None
        assert clients.successes == 1
        assert clients.retries_scheduled == 0

    def test_failure_schedules_backoffd_retry(self):
        clients = population()
        retry = clients.on_outcome(record(SHED), 0.02)
        assert retry is not None
        assert retry.request_id == "t03-r0~a1"
        assert retry.arrival_s == pytest.approx(0.03)
        assert retry.seed != request().seed
        # The retried attempt keeps class, game, engine and deadline.
        assert retry.priority == "standard"
        assert retry.deadline_s == request().deadline_s
        assert clients.retries_scheduled == 1

    def test_attempt_cap_exhausts_lineage(self):
        clients = population()
        rec = record(REJECTED, rid="t03-r0~a2")
        assert clients.on_outcome(rec, 0.1) is None
        assert clients.exhausted_attempts == 1

    def test_give_up_patience_from_first_arrival(self):
        clients = population()
        # First failure at t=0.995: the retry would land past the
        # 1.0s patience measured from the lineage's first arrival.
        rec = record(MISSED, arrival_s=0.0)
        assert clients.on_outcome(rec, 0.995) is None
        assert clients.gave_up == 1

    def test_retry_kind_none_disables_feedback(self):
        clients = population(retry=dict(kind="none"))
        assert clients.on_outcome(record(SHED), 0.0) is None
        assert clients.failures == 1
        assert clients.retries_scheduled == 0

    def test_breaker_gates_retries_per_tenant(self):
        clients = population(
            breaker=dict(failure_threshold=2, reset_timeout_s=0.5)
        )
        assert clients.on_outcome(record(SHED), 0.0) is not None
        # Second consecutive failure trips tenant t03's breaker; the
        # retry it would have scheduled is suppressed.
        assert clients.on_outcome(record(SHED), 0.01) is None
        assert clients.suppressed_breaker == 1
        assert clients.breaker_opens == 1
        assert clients.open_breakers() == 1
        # A different tenant's breaker is untouched.
        other = record(SHED, rid="t04-r0")
        assert clients.on_outcome(other, 0.01) is not None

    def test_throttle_suppresses_under_sustained_pushback(self):
        clients = population(throttle=dict(k=2.0, window=8))
        suppressed = 0
        for i in range(8):
            rec = record(REJECTED, rid=f"t03-r{i}")
            if clients.on_outcome(rec, 0.01 * i) is None:
                suppressed += 1
        assert suppressed == clients.suppressed_throttle
        assert clients.suppressed_throttle > 0

    def test_feedback_is_deterministic(self):
        def drive():
            clients = population(throttle=dict(k=1.0, window=4))
            out = []
            for i in range(12):
                rec = record(REJECTED, rid=f"t03-r{i}")
                retry = clients.on_outcome(rec, 0.01 * i)
                out.append(
                    None if retry is None else retry.request_id
                )
            return out

        assert drive() == drive()

    def test_coerce_forms(self):
        assert ClientPopulation.coerce(None) is None
        assert ClientPopulation.coerce(False) is None
        assert isinstance(
            ClientPopulation.coerce(True), ClientPopulation
        )
        pop = population()
        assert ClientPopulation.coerce(pop) is pop
        config = ClientConfig()
        assert ClientPopulation.coerce(config).config is config


# -- the metastability detector ----------------------------------------------


def synthetic_records(
    goodput_per_bin: list[int],
    offered_per_bin: int = 5,
    clear_s: float = 0.0,
    bin_s: float = 0.05,
):
    """One record stream: ``offered_per_bin`` arrivals per bin, of
    which the first ``goodput_per_bin[b]`` complete instantly."""
    records = []
    for b, good in enumerate(goodput_per_bin):
        for i in range(offered_per_bin):
            t = clear_s + (b + 0.5) * bin_s
            req = request(
                rid=f"t00-b{b}i{i}", arrival_s=t, deadline_s=0.01
            )
            rec = RequestRecord(request=req)
            if i < good:
                rec.status = COMPLETED
                rec.start_s = t
                rec.finish_s = t + 0.001
            else:
                rec.status = SHED
            records.append(rec)
    return records


class TestMetastabilityDetector:
    def detector(self, **kwargs) -> MetastabilityDetector:
        defaults = dict(
            bin_s=0.05,
            settle_s=0.0,
            goodput_frac=0.5,
            min_offered_rate=40.0,
            sustain_bins=3,
        )
        defaults.update(kwargs)
        return MetastabilityDetector(**defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            MetastabilityDetector(bin_s=0.0)
        with pytest.raises(ValueError):
            MetastabilityDetector(settle_s=-0.1)
        with pytest.raises(ValueError):
            MetastabilityDetector(goodput_frac=0.0)
        with pytest.raises(ValueError):
            MetastabilityDetector(sustain_bins=0)

    def test_sustained_low_goodput_is_a_trap(self):
        records = synthetic_records([5, 1, 1, 1, 5])
        verdict = self.detector().analyze(
            records, clear_s=0.0, horizon_s=0.25
        )
        assert verdict.trapped
        assert verdict.trapped_bins == 3
        assert verdict.offered == 25
        assert verdict.goodput == 13

    def test_short_dip_is_a_draining_backlog_not_a_trap(self):
        records = synthetic_records([5, 1, 1, 5, 5])
        verdict = self.detector().analyze(
            records, clear_s=0.0, horizon_s=0.25
        )
        assert not verdict.trapped
        assert verdict.trapped_bins == 2

    def test_idle_bins_are_not_trapped(self):
        # 1 arrival per bin is under min_offered_rate * bin_s = 2.
        records = synthetic_records(
            [0, 0, 0, 0], offered_per_bin=1
        )
        verdict = self.detector().analyze(
            records, clear_s=0.0, horizon_s=0.2
        )
        assert not verdict.trapped
        assert verdict.trapped_bins == 0

    def test_settle_grace_excludes_the_draining_crowd(self):
        # All the badness is inside the settle window.
        records = synthetic_records([0, 0, 0, 5, 5, 5])
        verdict = self.detector(settle_s=0.15).analyze(
            records, clear_s=0.0, horizon_s=0.3
        )
        assert not verdict.trapped
        assert verdict.window_start_s == pytest.approx(0.15)

    def test_empty_window_is_not_trapped(self):
        verdict = self.detector().analyze(
            [], clear_s=0.5, horizon_s=0.4
        )
        assert not verdict.trapped
        assert verdict.goodput_ratio == 1.0

    def test_coerce(self):
        assert MetastabilityDetector.coerce(None) is None
        assert isinstance(
            MetastabilityDetector.coerce(True), MetastabilityDetector
        )
        assert (
            MetastabilityDetector.coerce({"bin_s": 0.1}).bin_s == 0.1
        )


class TestPostCrowdAttainment:
    def test_counts_only_post_clear_arrivals_of_the_class(self):
        records = [
            record(COMPLETED, rid="t00-a", arrival_s=0.1,
                   priority="interactive"),
            record(COMPLETED, rid="t00-b", arrival_s=0.6,
                   priority="interactive"),
            record(SHED, rid="t00-c", arrival_s=0.7,
                   priority="interactive"),
            record(SHED, rid="t00-d", arrival_s=0.8,
                   priority="standard"),
        ]
        for rec in records:
            if rec.status == COMPLETED:
                rec.start_s = rec.request.arrival_s
                rec.finish_s = rec.request.arrival_s + 0.01
        assert post_crowd_attainment(records, 0.5) == pytest.approx(
            0.5
        )

    def test_no_post_crowd_work_is_vacuous_success(self):
        assert post_crowd_attainment([], 0.5) == 1.0


# -- the closed loop end to end ----------------------------------------------


def storm_config(**overrides) -> StormConfig:
    trace = TraceConfig(
        base_rate=120.0,
        horizon_s=0.25,
        seed=42,
        components=(FlashCrowd(0.05, 0.1, 5.0),),
        class_deadline_s=(
            ("interactive", 0.05),
            ("standard", 0.1),
            ("batch", 0.2),
        ),
        workload=WorkloadConfig(
            seed=42, engines=("sequential",), budget_scale=0.25
        ),
    )
    defaults = dict(
        trace=trace,
        n_devices=1,
        max_active=8,
        max_queue=8,
        seed=42,
        overload=None,
        clients=dict(
            retry=dict(
                kind="fixed",
                base_s=0.01,
                jitter=0.2,
                max_attempts=4,
                give_up_s=(),
            ),
            seed=42,
        ),
    )
    defaults.update(overrides)
    return StormConfig(**defaults)


class TestClosedLoopStorm:
    def test_retries_join_the_offered_load(self):
        outcome = run_storm(storm_config())
        retries = [
            r
            for r in outcome.records
            if attempt_of(r.request.request_id) > 0
        ]
        assert retries
        assert len(outcome.records) == len(outcome.requests) + len(
            retries
        )
        assert outcome.report.retries_offered == len(retries)
        # Lineage ids stay unique.
        rids = [r.request.request_id for r in outcome.records]
        assert len(rids) == len(set(rids))

    def test_closed_loop_replays_bit_identically(self):
        def fingerprint(outcome):
            return [
                (
                    r.request.request_id,
                    r.request.arrival_s,
                    r.status,
                    r.finish_s,
                )
                for r in outcome.records
            ]

        assert fingerprint(run_storm(storm_config())) == fingerprint(
            run_storm(storm_config())
        )

    def test_open_loop_arrivals_unchanged_by_client_layer(self):
        """Adding clients never changes the trace itself -- only
        retries are added on top."""
        closed = run_storm(storm_config())
        open_loop = run_storm(storm_config(clients=None))
        assert [
            r.request_id for r in closed.requests
        ] == [r.request_id for r in open_loop.requests]
        first_tries = {
            r.request.request_id: r.request.arrival_s
            for r in closed.records
            if attempt_of(r.request.request_id) == 0
        }
        assert first_tries == {
            r.request.request_id: r.request.arrival_s
            for r in open_loop.records
        }

    def test_retry_budget_rejects_with_explicit_outcome(self):
        outcome = run_storm(
            storm_config(
                retry_budget=dict(
                    fill_per_first_try=0.0, cap=1.0, initial=0.0
                )
            )
        )
        budget_rejected = [
            r
            for r in outcome.records
            if r.extras.get("budget_rejected")
        ]
        assert budget_rejected
        assert all(
            r.status == REJECTED for r in budget_rejected
        )
        assert all(
            attempt_of(r.request.request_id) > 0
            for r in budget_rejected
        )
        assert outcome.report.budget_rejected == len(budget_rejected)
        # A zero-fill budget admits no retries at all.
        assert outcome.report.budget_granted == 0

    def test_budget_never_charges_first_tries(self):
        """Even a zero-token budget touches only retries: every
        first-try is admitted exactly as without one (the budget may
        still *help* first-tries by keeping retries out of their
        queue, so statuses are compared on the budget run itself)."""
        outcome = run_storm(
            storm_config(
                retry_budget=dict(
                    fill_per_first_try=0.0, cap=1.0, initial=0.0
                )
            )
        )
        free = run_storm(storm_config())
        assert (
            outcome.report.first_tries == free.report.first_tries
        )
        for rec in outcome.records:
            if attempt_of(rec.request.request_id) == 0:
                assert not rec.extras.get("budget_rejected")

    def test_defenses_reduce_retry_volume(self):
        undefended = run_storm(storm_config())
        defended = run_storm(
            storm_config(
                clients=dict(
                    retry=dict(
                        kind="fixed",
                        base_s=0.01,
                        jitter=0.2,
                        max_attempts=4,
                        give_up_s=(),
                    ),
                    breaker=dict(
                        failure_threshold=3, reset_timeout_s=0.1
                    ),
                    throttle=dict(k=1.5, window=32),
                    seed=42,
                ),
                retry_budget=dict(
                    fill_per_first_try=0.1, cap=4.0, initial=1.0
                ),
            )
        )
        assert (
            defended.report.retries_offered
            < undefended.report.retries_offered
        )
        assert (
            defended.report.client_suppressed_breaker
            + defended.report.client_suppressed_throttle
            > 0
        )

    def test_storm_config_crowd_clear(self):
        assert storm_config().crowd_clear_s() == pytest.approx(0.15)
        no_crowd = storm_config()
        trace = no_crowd.trace
        from dataclasses import replace

        assert (
            StormConfig(
                trace=replace(trace, components=()),
                clients=None,
            ).crowd_clear_s()
            == 0.0
        )
