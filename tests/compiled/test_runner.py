"""Bit-identity wall for the compiled playout executor.

The compiled C kernels must be indistinguishable from the NumPy
reference at the playout-call level: identical winners, scores and
finish steps for every lane, *and* identical RNG side effects (the
caller's generator must advance by exactly the same per-lane streams,
including the compaction k* rule), across games, widths and starting
states.  When no C toolchain is available every test still passes --
the runner falls back to the NumPy path, which is trivially identical.
"""

import numpy as np
import pytest

from repro.compiled import (
    COMPILED_GAMES,
    compiled_available,
    run_playouts_tracked_compiled,
    unavailable_reason,
)
from repro.games import make_batch_game, make_game
from repro.games.batch import run_playouts_tracked
from repro.rng import BatchXorShift128Plus

pytestmark = pytest.mark.compiled

GAMES = sorted(COMPILED_GAMES)
#: Widths straddling the scalar cutoff, the compaction threshold
#: (>= 64) and a wide vectorised batch.
WIDTHS = [1, 3, 63, 64, 200, 1024]


def _mid_state(game_name: str, plies: int, seed: int = 7):
    game = make_game(game_name)
    rng = np.random.default_rng(seed)
    state = game.initial_state()
    for _ in range(plies):
        if game.is_terminal(state):
            break
        moves = game.legal_moves(state)
        state = game.apply(state, int(rng.choice(moves)))
    return state


@pytest.mark.parametrize("game_name", GAMES)
@pytest.mark.parametrize("n", WIDTHS)
def test_initial_state_identical(game_name, n):
    state = make_game(game_name).initial_state()
    _run_both_state(game_name, state, n, seed=11)


def _run_both_state(game_name, state, n, seed):
    bg = make_batch_game(game_name)
    ref_rng = BatchXorShift128Plus(n, seed)
    cmp_rng = BatchXorShift128Plus(n, seed)
    ref = run_playouts_tracked(bg, bg.make_batch([state], n), ref_rng)
    got = run_playouts_tracked_compiled(
        bg, bg.make_batch([state], n), cmp_rng
    )
    np.testing.assert_array_equal(got.winners, ref.winners)
    np.testing.assert_array_equal(got.scores, ref.scores)
    np.testing.assert_array_equal(got.finish_steps, ref.finish_steps)
    assert cmp_rng.state_digest() == ref_rng.state_digest()


@pytest.mark.parametrize("game_name", GAMES)
@pytest.mark.parametrize("plies", [2, 5, 9])
def test_mid_game_states_identical(game_name, plies):
    game = make_game(game_name)
    state = _mid_state(game_name, plies)
    _run_both_state(game_name, state, 128, seed=plies)
    if game.is_terminal(state):
        return
    # Mixed batch: mid-game roots at a non-compacting width too.
    _run_both_state(game_name, state, 17, seed=plies + 100)


@pytest.mark.parametrize("game_name", GAMES)
def test_terminal_state_identical(game_name):
    game = make_game(game_name)
    state = _mid_state(game_name, 200)
    assert game.is_terminal(state)
    _run_both_state(game_name, state, 96, seed=1)


@pytest.mark.parametrize("game_name", GAMES)
def test_repeated_calls_share_rng_stream(game_name):
    """Two consecutive calls on the same generator stay aligned: the
    compiled path's k* advance rule must leave the generator exactly
    where the NumPy path leaves it, or call two diverges."""
    bg = make_batch_game(game_name)
    state = make_game(game_name).initial_state()
    ref_rng = BatchXorShift128Plus(256, 5)
    cmp_rng = BatchXorShift128Plus(256, 5)
    for _ in range(3):
        ref = run_playouts_tracked(
            bg, bg.make_batch([state], 256), ref_rng
        )
        got = run_playouts_tracked_compiled(
            bg, bg.make_batch([state], 256), cmp_rng
        )
        np.testing.assert_array_equal(got.winners, ref.winners)
        assert cmp_rng.state_digest() == ref_rng.state_digest()


def test_unsupported_game_falls_back(monkeypatch):
    """Breakthrough has no C kernel: ``@compiled`` must degrade to
    the NumPy driver -- bit-identically -- and say so, once."""
    import warnings

    from repro.compiled import runner

    monkeypatch.setattr(runner, "_WARNED_GAMES", set())
    assert "breakthrough" not in COMPILED_GAMES
    bg = make_batch_game("breakthrough")
    state = make_game("breakthrough").initial_state()
    ref_rng = BatchXorShift128Plus(32, 3)
    cmp_rng = BatchXorShift128Plus(32, 3)
    ref = run_playouts_tracked(bg, bg.make_batch([state], 32), ref_rng)
    with pytest.warns(RuntimeWarning, match="breakthrough"):
        got = run_playouts_tracked_compiled(
            bg, bg.make_batch([state], 32), cmp_rng
        )
    np.testing.assert_array_equal(got.winners, ref.winners)
    np.testing.assert_array_equal(got.scores, ref.scores)
    np.testing.assert_array_equal(
        got.finish_steps, ref.finish_steps
    )
    assert cmp_rng.state_digest() == ref_rng.state_digest()
    # Warn once per game, not once per launch.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        run_playouts_tracked_compiled(
            bg, bg.make_batch([state], 32), cmp_rng
        )


def test_disabled_env_reports_unavailable(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILED", "never")
    assert not compiled_available()
    assert unavailable_reason() is not None


def test_availability_is_consistent():
    """Whichever way the toolchain probe went, the module agrees with
    itself: available means no unavailability reason and vice versa."""
    if compiled_available():
        assert unavailable_reason() is None
    else:
        assert unavailable_reason() is not None
