"""Corruption applicators and host-boundary validators."""

import numpy as np
import pytest

from repro.faults import CORRUPT_MODES, Corruption
from repro.integrity import (
    MAX_PLIES,
    apply_answer_corruption,
    apply_block_corruption,
    validate_answers,
    validate_winners,
)

pytestmark = pytest.mark.integrity

BLOCKS, TPB = 4, 8


def clean_winners():
    rng = np.random.default_rng(7)
    return rng.choice([-1, 0, 1], size=BLOCKS * TPB).astype(np.int8)


def clean_answers(n=16):
    rng = np.random.default_rng(7)
    return [
        (int(w), int(p))
        for w, p in zip(
            rng.choice([-1, 0, 1], size=n), rng.integers(1, 60, size=n)
        )
    ]


def corruption(mode, lane=5, salt=12345):
    return Corruption(mode=mode, lane=lane, salt=salt)


class TestBlockCorruption:
    def test_original_array_never_mutated(self):
        winners = clean_winners()
        before = winners.copy()
        for mode in CORRUPT_MODES:
            apply_block_corruption(
                winners, BLOCKS, TPB, corruption(mode)
            )
            assert (winners == before).all()

    @pytest.mark.parametrize(
        "mode", [m for m in CORRUPT_MODES if m != "moveswap"]
    )
    def test_value_modes_always_detected(self, mode):
        for salt in range(25):
            out = apply_block_corruption(
                clean_winners(), BLOCKS, TPB, corruption(mode, salt=salt)
            )
            assert validate_winners(out) is not None

    def test_bitflip_knocks_winner_out_of_domain(self):
        out = apply_block_corruption(
            clean_winners(), BLOCKS, TPB, corruption("bitflip")
        )
        bad = out[~np.isin(out, (-1, 0, 1))]
        assert bad.size == 1

    def test_moveswap_escapes_per_value_validation(self):
        out = apply_block_corruption(
            clean_winners(), BLOCKS, TPB, corruption("moveswap")
        )
        assert validate_winners(out) is None

    def test_moveswap_swaps_whole_block_rows(self):
        winners = clean_winners()
        out = apply_block_corruption(
            winners, BLOCKS, TPB, corruption("moveswap", lane=0, salt=0)
        )
        rows, before = out.reshape(BLOCKS, TPB), winners.reshape(
            BLOCKS, TPB
        )
        assert (rows[0] == before[1]).all()
        assert (rows[1] == before[0]).all()
        assert (rows[2:] == before[2:]).all()

    def test_moveswap_single_block_is_noop(self):
        winners = clean_winners()
        out = apply_block_corruption(
            winners, 1, BLOCKS * TPB, corruption("moveswap")
        )
        assert (out == winners).all()

    def test_lane_wraps_modulo_batch(self):
        out = apply_block_corruption(
            clean_winners(),
            BLOCKS,
            TPB,
            corruption("nan", lane=BLOCKS * TPB + 3),
        )
        assert np.isnan(out[3])

    def test_clean_result_validates(self):
        assert validate_winners(clean_winners()) is None

    def test_validator_names_the_bad_value(self):
        arr = clean_winners().astype(np.int16)
        arr[2] = 77
        assert "77" in validate_winners(arr)


class TestAnswerCorruption:
    def test_original_answers_never_mutated(self):
        answers = clean_answers()
        before = list(answers)
        for mode in CORRUPT_MODES:
            apply_answer_corruption(answers, corruption(mode))
            assert answers == before

    @pytest.mark.parametrize(
        "mode", [m for m in CORRUPT_MODES if m != "moveswap"]
    )
    def test_value_modes_always_detected(self, mode):
        for salt in range(25):
            out = apply_answer_corruption(
                clean_answers(), corruption(mode, salt=salt)
            )
            assert validate_answers(out) is not None

    def test_moveswap_escapes_per_value_validation(self):
        out = apply_answer_corruption(
            clean_answers(), corruption("moveswap")
        )
        assert validate_answers(out) is None
        assert sorted(out) == sorted(clean_answers())

    def test_clean_answers_validate(self):
        assert validate_answers(clean_answers()) is None

    def test_overflowed_plies_rejected(self):
        assert (
            validate_answers([(1, MAX_PLIES + 1)]) is not None
        )
        assert validate_answers([(1, MAX_PLIES)]) is None

    def test_negative_plies_rejected(self):
        assert validate_answers([(0, -1)]) is not None

    def test_nan_winner_rejected(self):
        assert validate_answers([(float("nan"), 4)]) is not None
