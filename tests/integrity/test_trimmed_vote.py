"""Byzantine-tolerant trimmed vote and the integrity policy/audit."""

import pytest

from repro.core import (
    select_move,
    trimmed_vote_stat_dicts,
    trimmed_vote_stats,
)
from repro.core.tree import SearchTree
from repro.games import TicTacToe
from repro.integrity import IntegrityPolicy, audit_root_stats
from repro.rng import XorShift64Star

pytestmark = pytest.mark.integrity

GAME = TicTacToe()


def honest_stats(move, visits=100.0):
    """A tree that spent most of its visits on ``move``."""
    stats = {m: (5.0, 2.5) for m in range(3) if m != move}
    stats[move] = (visits, visits * 0.6)
    return stats


class TestTrimmedVoteStatDicts:
    def test_unanimous_ensemble_keeps_its_choice(self):
        per_tree = [honest_stats(1) for _ in range(5)]
        voted = trimmed_vote_stat_dicts(per_tree)
        assert select_move(voted) == 1

    def test_one_byzantine_tree_is_trimmed_out(self):
        # Four honest trees prefer move 1; one poisoned tree reports
        # an absurd visit mass on move 2.  The sum vote falls for it;
        # the trimmed vote does not.
        per_tree = [honest_stats(1) for _ in range(4)]
        per_tree.append({2: (1e9, 1e9)})
        summed = {}
        for stats in per_tree:
            for m, (v, w) in stats.items():
                sv, sw = summed.get(m, (0.0, 0.0))
                summed[m] = (sv + v, sw + w)
        assert select_move(summed) == 2  # the sum vote is hijacked
        voted = trimmed_vote_stat_dicts(per_tree, trim=0.2)
        assert select_move(voted) == 1

    def test_shares_not_raw_mass_decide(self):
        # A tree with 10x the visits of its peers gets one vote's
        # worth of say, not ten -- even with trim=0 (plain mean of
        # shares), where the sum vote would follow the raw mass.
        per_tree = [honest_stats(1, visits=100.0) for _ in range(3)]
        per_tree.append(honest_stats(0, visits=1000.0))
        summed = {}
        for stats in per_tree:
            for m, (v, w) in stats.items():
                sv, sw = summed.get(m, (0.0, 0.0))
                summed[m] = (sv + v, sw + w)
        assert select_move(summed) == 0
        voted = trimmed_vote_stat_dicts(per_tree, trim=0.0)
        assert select_move(voted) == 1

    def test_empty_and_zero_visit_trees_abstain(self):
        per_tree = [honest_stats(1), {}, {0: (0.0, 0.0)}]
        voted = trimmed_vote_stat_dicts(per_tree)
        assert select_move(voted) == 1

    def test_all_abstaining_gives_empty_vote(self):
        assert trimmed_vote_stat_dicts([{}, {}]) == {}

    def test_trim_fraction_validated(self):
        with pytest.raises(ValueError, match="trim fraction"):
            trimmed_vote_stat_dicts([honest_stats(0)], trim=0.5)
        with pytest.raises(ValueError, match="trim fraction"):
            trimmed_vote_stat_dicts([honest_stats(0)], trim=-0.1)

    def test_small_ensembles_fall_back_to_plain_mean(self):
        # With n=2 and trim=0.4, 2*k == 0 -- nothing can be trimmed
        # without emptying the vote, so the full mean is used.
        per_tree = [honest_stats(1), honest_stats(0)]
        voted = trimmed_vote_stat_dicts(per_tree, trim=0.4)
        assert set(voted) == {0, 1, 2}

    def test_win_bound_invariant_survives_the_vote(self):
        per_tree = [honest_stats(i % 3) for i in range(7)]
        voted = trimmed_vote_stat_dicts(per_tree)
        assert audit_root_stats(voted) is None

    def test_total_mass_comparable_to_sum_vote(self):
        per_tree = [honest_stats(1) for _ in range(4)]
        voted = trimmed_vote_stat_dicts(per_tree, trim=0.0)
        ensemble_total = sum(
            v for stats in per_tree for v, _ in stats.values()
        )
        voted_total = sum(v for v, _ in voted.values())
        assert voted_total == pytest.approx(ensemble_total)


class TestTrimmedVoteOverTrees:
    def make_tree(self, seed):
        tree = SearchTree(
            GAME, GAME.initial_state(), XorShift64Star(seed)
        )
        for _ in range(20):
            node, _ = tree.select_expand()
            tree.backprop_winner(node, 0)
        return tree

    def test_matches_stat_dict_form(self):
        trees = [self.make_tree(s) for s in range(1, 5)]
        assert trimmed_vote_stats(trees) == trimmed_vote_stat_dicts(
            [t.root_stats() for t in trees]
        )


class TestIntegrityPolicy:
    def test_defaults_are_fully_armed(self):
        policy = IntegrityPolicy()
        assert policy.validate_results
        assert policy.audit_every > 0
        assert policy.quarantine
        assert policy.active

    def test_disabled_turns_everything_off(self):
        policy = IntegrityPolicy.disabled()
        assert not policy.validate_results
        assert not policy.audit_every
        assert not policy.quarantine
        assert not policy.active

    def test_coerce_accepts_dict_none_and_policy(self):
        assert IntegrityPolicy.coerce(None) == IntegrityPolicy()
        assert IntegrityPolicy.coerce(
            {"audit_every": 4}
        ) == IntegrityPolicy(audit_every=4)
        policy = IntegrityPolicy(quarantine=False)
        assert IntegrityPolicy.coerce(policy) is policy

    def test_coerce_rejects_foreign_types(self):
        with pytest.raises(TypeError, match="integrity policy"):
            IntegrityPolicy.coerce("defended")

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError, match="audit_every"):
            IntegrityPolicy(audit_every=-1)
        with pytest.raises(ValueError, match="max_result_retries"):
            IntegrityPolicy(max_result_retries=-1)


class TestAuditRootStats:
    def test_clean_stats_pass(self):
        assert audit_root_stats(honest_stats(1)) is None

    def test_wins_exceeding_visits_flagged(self):
        reason = audit_root_stats({4: (10.0, 11.0)})
        assert "exceed" in reason

    def test_non_finite_flagged(self):
        assert audit_root_stats({4: (float("nan"), 0.0)}) is not None
        assert audit_root_stats({4: (1.0, float("inf"))}) is not None

    def test_negative_values_flagged(self):
        assert audit_root_stats({4: (-1.0, 0.0)}) is not None
        assert audit_root_stats({4: (1.0, -0.5)}) is not None

    def test_illegal_move_flagged_when_legal_set_given(self):
        stats = {9: (5.0, 2.0)}
        assert audit_root_stats(stats, legal_moves={0, 1}) is not None
        assert audit_root_stats(stats, legal_moves={9}) is None
