"""Engine-level defense behavior: screening, retries, poison,
audit, quarantine -- and the zero-rate bit-identity guarantee."""

import dataclasses

import pytest

from repro.core import BlockParallelMcts, RootParallelMcts
from repro.faults import FaultInjector, FaultPlan
from repro.games import TicTacToe
from repro.integrity import IntegrityPolicy

pytestmark = pytest.mark.integrity

GAME = TicTacToe()
BUDGET = 0.002


def injector(text):
    return FaultInjector(FaultPlan.parse(text))


def block_engine(inj=None, **kwargs):
    return BlockParallelMcts(
        GAME, seed=11, blocks=4, threads_per_block=32,
        injector=inj, **kwargs
    )


def root_engine(inj=None, **kwargs):
    return RootParallelMcts(
        GAME, seed=11, n_trees=4, injector=inj, **kwargs
    )


class TestZeroRateBitIdentity:
    @pytest.mark.parametrize("make", [block_engine, root_engine])
    def test_zero_rate_plan_is_a_noop(self, make):
        baseline = make(None).search(GAME.initial_state(), BUDGET)
        defended = make(injector("seed=7")).search(
            GAME.initial_state(), BUDGET
        )
        assert defended.move == baseline.move
        assert defended.stats == baseline.stats
        assert defended.iterations == baseline.iterations
        assert defended.simulations == baseline.simulations
        assert defended.elapsed_s == baseline.elapsed_s
        # ... and the defenses report a clean run.
        info = defended.integrity
        assert info["corrupt_detected"] == 0
        assert info["corrupt_escaped"] == 0
        assert info["quarantined_trees"] == []

    def test_no_injector_result_has_no_integrity_extras(self):
        result = block_engine(None).search(GAME.initial_state(), BUDGET)
        assert not any(
            k.startswith("integrity.") for k in result.extras
        )
        assert result.integrity == {}


class TestBlockScreening:
    def test_detectable_corruption_is_caught_and_retried(self):
        result = block_engine(
            injector("corrupt=0.3:nan,seed=3")
        ).search(GAME.initial_state(), BUDGET)
        info = result.integrity
        assert info["corrupt_detected"] > 0
        assert info["corrupt_escaped"] == 0
        # Retries re-run the kernel: every attempt's playouts charged.
        assert result.simulations > result.iterations * 4 * 32

    def test_saturated_corruption_degrades_not_crashes(self):
        # Every readback corrupt: the retry budget runs out and the
        # engine degrades batches to neutral draws, still finishing.
        result = block_engine(
            injector("corrupt=1.0:negative,seed=3")
        ).search(GAME.initial_state(), BUDGET)
        info = result.integrity
        assert info["dropped_batches"] == result.iterations
        assert info["corrupt_detected"] >= result.iterations
        assert result.move in GAME.legal_moves(GAME.initial_state())

    def test_moveswap_escapes_value_validation(self):
        result = block_engine(
            injector("corrupt=1.0:moveswap,seed=3")
        ).search(GAME.initial_state(), BUDGET)
        info = result.integrity
        assert info["corrupt_detected"] == 0
        assert info["corrupt_escaped"] > 0
        assert info["dropped_batches"] == 0

    def test_defenses_off_lets_corruption_through(self):
        result = block_engine(
            injector("corrupt=0.5:nan,seed=3"),
            integrity=IntegrityPolicy.disabled(),
        ).search(GAME.initial_state(), BUDGET)
        info = result.integrity
        assert info["corrupt_detected"] == 0
        assert info["corrupt_escaped"] > 0


class TestPoisonAndQuarantine:
    def test_poisoned_tree_is_audited_out(self):
        result = block_engine(injector("poison=tree:2")).search(
            GAME.initial_state(), BUDGET
        )
        info = result.integrity
        assert info["poison_applied"] > 0
        assert info["audit_violations"] > 0
        assert info["quarantined_trees"] == [2]

    def test_quarantine_respects_policy(self):
        result = block_engine(
            injector("poison=tree:2"),
            integrity={"quarantine": False},
        ).search(GAME.initial_state(), BUDGET)
        info = result.integrity
        assert info["audit_violations"] > 0
        assert info["quarantined_trees"] == []

    def test_audit_disabled_never_fires(self):
        result = block_engine(
            injector("poison=tree:2"),
            integrity={"audit_every": 0},
        ).search(GAME.initial_state(), BUDGET)
        info = result.integrity
        assert info["audits"] == 0
        assert info["quarantined_trees"] == []

    def test_out_of_range_poison_index_ignored(self):
        result = block_engine(injector("poison=tree:99")).search(
            GAME.initial_state(), BUDGET
        )
        assert result.integrity["poison_applied"] == 0

    @pytest.mark.parametrize("backend", ["node", "arena"])
    def test_both_backends_quarantine(self, backend):
        result = BlockParallelMcts(
            GAME,
            seed=11,
            blocks=4,
            threads_per_block=32,
            injector=injector("poison=tree:1"),
            backend=backend,
        ).search(GAME.initial_state(), BUDGET)
        assert result.integrity["quarantined_trees"] == [1]

    def test_root_engine_quarantines_poison(self):
        result = root_engine(injector("poison=tree:0")).search(
            GAME.initial_state(), BUDGET
        )
        assert result.integrity["quarantined_trees"] == [0]


class TestRootScreening:
    def test_detectable_corruption_is_caught(self):
        result = root_engine(
            injector("corrupt=0.3:overflow,seed=3")
        ).search(GAME.initial_state(), BUDGET)
        info = result.integrity
        assert info["corrupt_detected"] > 0
        assert info["corrupt_escaped"] == 0

    def test_saturated_corruption_degrades_not_crashes(self):
        result = root_engine(
            injector("corrupt=1.0:nan,seed=3")
        ).search(GAME.initial_state(), BUDGET)
        info = result.integrity
        assert info["dropped_batches"] > 0
        assert result.move in GAME.legal_moves(GAME.initial_state())


class TestVoteModes:
    @pytest.mark.parametrize("engine", [block_engine, root_engine])
    def test_unknown_vote_mode_rejected(self, engine):
        with pytest.raises(ValueError, match="vote mode"):
            engine(None, vote="median")

    @pytest.mark.parametrize("vote", ["sum", "majority", "trimmed"])
    def test_every_vote_mode_completes(self, vote):
        result = block_engine(None, vote=vote).search(
            GAME.initial_state(), BUDGET
        )
        assert result.move in GAME.legal_moves(GAME.initial_state())

    def test_trimmed_vote_resists_undetected_poison(self):
        # Audits off so the poisoned tree stays in the vote.  With 8
        # trees and trim=0.2, one tree from each tail is trimmed, so
        # the poisoned tree's inflated win share cannot drag the vote
        # away from the clean run's choice.
        def search(vote):
            return BlockParallelMcts(
                GAME,
                seed=11,
                blocks=8,
                threads_per_block=32,
                injector=injector("poison=tree:0"),
                integrity={"audit_every": 0},
                vote=vote,
            ).search(GAME.initial_state(), BUDGET)

        clean = BlockParallelMcts(
            GAME, seed=11, blocks=8, threads_per_block=32
        ).search(GAME.initial_state(), BUDGET)
        poisoned = search("trimmed")
        assert poisoned.integrity["poison_applied"] > 0
        assert poisoned.move == clean.move


class TestCheckpointCarriesIntegrityState:
    def test_integrity_counters_survive_snapshot_restore(self):
        engine = block_engine(injector("corrupt=0.4:nan,seed=3"))
        snaps = []
        engine.iteration_hook = lambda eng, n: snaps.append(
            eng.snapshot()
        )
        result = engine.search(GAME.initial_state(), BUDGET)
        assert result.integrity["corrupt_detected"] > 0

        resumed = block_engine(injector("corrupt=0.4:nan,seed=3"))
        resumed.restore(snaps[-1])
        final = resumed.resume()
        assert final.integrity == result.integrity
        assert final.move == result.move
        assert final.stats == result.stats
