"""Service-level integrity: report accounting under corruption, and
recovery that never crashes on -- and never adopts -- rotten state."""

import base64
import json

import pytest

from repro.integrity import IntegrityPolicy
from repro.serve import (
    COMPLETED,
    JournalWriter,
    SearchRequest,
    SearchService,
    ServiceCrash,
    read_journal,
)
from repro.serve.journal import _record_crc

pytestmark = pytest.mark.integrity

BUDGET = 4e-4


def request(i, engine="sequential", **kwargs):
    defaults = dict(
        request_id=f"r{i}",
        game="tictactoe",
        engine=engine,
        budget_s=BUDGET,
        seed=100 + i,
    )
    defaults.update(kwargs)
    return SearchRequest(**defaults)


def mixed_requests():
    return [
        request(i, engine=eng)
        for i, eng in enumerate(
            ["sequential", "root:2", "block:4x32", "sequential@arena"]
        )
    ]


class TestServiceCorruptionAccounting:
    def test_defended_run_counts_detections(self):
        service = SearchService(
            seed=5,
            n_devices=2,
            faults="corrupt=0.3:bitflip,seed=7",
        )
        service.submit_all(
            [request(i, engine="root:2") for i in range(6)]
        )
        records = service.run()
        assert all(r.status == COMPLETED for r in records)
        report = service.report()
        assert report.corrupt_detected > 0
        assert report.corrupt_escaped == 0
        assert report.rejected_results > 0
        assert "corrupt detected" in report.render()

    def test_defenses_off_lets_corruption_escape(self):
        service = SearchService(
            seed=5,
            n_devices=2,
            faults="corrupt=0.3:bitflip,seed=7",
            integrity=IntegrityPolicy.disabled(),
        )
        service.submit_all(
            [request(i, engine="root:2") for i in range(6)]
        )
        service.run()
        report = service.report()
        assert report.corrupt_detected == 0
        assert report.corrupt_escaped > 0
        assert report.rejected_results == 0

    def test_engine_quarantines_surface_in_report(self):
        service = SearchService(
            seed=5, n_devices=2, faults="poison=tree:1"
        )
        service.submit_all(
            [request(0, engine="block:4x32")]
        )
        service.run()
        report = service.report()
        assert report.quarantined_trees >= 1

    def test_clean_run_reports_no_corruption_rows(self):
        service = SearchService(seed=5, n_devices=2)
        service.submit_all(mixed_requests())
        service.run()
        report = service.report()
        assert report.corrupt_detected == 0
        assert "corrupt detected" not in report.render()


def crash_run(path, faults, reqs=None):
    service = SearchService(
        seed=5,
        n_devices=2,
        journal=path,
        checkpoint_every=5,
        faults=faults,
    )
    service.submit_all(reqs if reqs is not None else mixed_requests())
    with pytest.raises(ServiceCrash):
        service.run()
    return service


def rot_checkpoint_record(path):
    """Corrupt the snapshot blob inside the *effective* (latest,
    still-incomplete) checkpoint record of one request, keeping the
    record CRC valid -- the journal reader accepts it, so only the
    checkpoint envelope's own checksum stands between the service and
    poisoned state."""
    rid = sorted(read_journal(path).checkpoints)[0]
    lines = path.read_text().splitlines()
    for i in range(len(lines) - 1, -1, -1):
        record = json.loads(lines[i])
        if (
            record.get("type") != "checkpoint"
            or record.get("rid") != rid
        ):
            continue
        blob = bytearray(base64.b64decode(record["snapshot"]))
        blob[len(blob) // 2] ^= 0x20
        record["snapshot"] = base64.b64encode(bytes(blob)).decode()
        record.pop("crc")
        record["crc"] = _record_crc(record)
        lines[i] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        return rid
    raise AssertionError("no checkpoint record found")


@pytest.mark.faults
class TestRecoveryUnderCorruption:
    def test_rotten_checkpoint_never_adopted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        crash_run(path, faults="crash=tick:20")
        assert read_journal(path).checkpoints
        rotten_rid = rot_checkpoint_record(path)

        recovered = SearchService.recover(
            path, seed=5, n_devices=2, checkpoint_every=5
        )
        records = recovered.run()
        assert all(r.status == COMPLETED for r in records)
        report = recovered.report()
        assert report.checkpoint_corrupt == 1
        assert "checkpoints corrupt" in report.render()
        # The damaged request restarted instead of resuming.
        assert recovered.corrupt_checkpoints == 1
        assert rotten_rid not in recovered._resume_snapshots

    def test_corrupt_journal_records_counted_in_report(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        crash_run(path, faults="crash=tick:20")
        lines = path.read_text().splitlines()
        lines.insert(2, '{"type": "subm')  # torn mid-file record
        path.write_text("\n".join(lines) + "\n")

        recovered = SearchService.recover(
            path, seed=5, n_devices=2, checkpoint_every=5
        )
        records = recovered.run()
        assert all(r.status == COMPLETED for r in records)
        report = recovered.report()
        assert report.journal_corrupt == 1
        assert "journal records corrupt" in report.render()

    def test_disk_faults_through_crash_and_recovery(self, tmp_path):
        # End to end: the injector rots journal records as they are
        # written; recovery still completes every readable request and
        # the rot shows up in the accounting.
        path = tmp_path / "journal.jsonl"
        crash_run(
            path,
            faults="disk=0.2,crash=tick:20,seed=9",
        )
        state = read_journal(path)
        assert state.corrupt_records > 0

        recovered = SearchService.recover(
            path, seed=5, n_devices=2, checkpoint_every=5
        )
        records = recovered.run()
        assert all(r.status == COMPLETED for r in records)
        assert (
            recovered.report().journal_corrupt
            == state.corrupt_records
        )

    def test_every_checkpoint_rotten_still_recovers(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        crash_run(path, faults="crash=tick:20")
        n = len(read_journal(path).checkpoints)
        assert n > 0
        lines = path.read_text().splitlines()
        out = []
        for line in lines:
            record = json.loads(line)
            if record.get("type") == "checkpoint":
                blob = bytearray(
                    base64.b64decode(record["snapshot"])
                )
                blob[1] ^= 0xFF
                record["snapshot"] = base64.b64encode(
                    bytes(blob)
                ).decode()
                record.pop("crc")
                record["crc"] = _record_crc(record)
            out.append(json.dumps(record, sort_keys=True))
        path.write_text("\n".join(out) + "\n")

        recovered = SearchService.recover(
            path, seed=5, n_devices=2, checkpoint_every=5
        )
        records = recovered.run()
        assert all(r.status == COMPLETED for r in records)
        report = recovered.report()
        assert report.checkpoint_corrupt == n
        assert report.resumed == 0
