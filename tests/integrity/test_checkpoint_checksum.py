"""Checksummed checkpoint envelope: corruption, skew and foreign
files are always refused with :class:`CheckpointError`."""

import dataclasses
import pickle
import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
    snapshot_bytes,
    snapshot_from_bytes,
)
from repro.core.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    ENVELOPE_VERSION,
    EngineSnapshot,
)
from repro.core.spec import make_engine
from repro.games import make_game

pytestmark = pytest.mark.integrity


def small_snapshot():
    """A real mid-search snapshot (trees, RNG, clock -- the works)."""
    game = make_game("tictactoe")
    engine = make_engine("block:4x32", game, seed=9)
    captured = {}

    def hook(eng, n):
        if n == 2:
            captured["snap"] = eng.snapshot()

    engine.iteration_hook = hook
    engine.search(game.initial_state(), 0.002)
    return captured["snap"]


SNAPSHOT = small_snapshot()
BLOB = snapshot_bytes(SNAPSHOT)


def same_snapshot(a, b):
    """Field-wise equality; payloads hold numpy arrays, so compare
    their serialised form rather than relying on dict ``==``."""
    return (
        (a.kind, a.backend, a.game, a.seed, a.clock_s, a.iterations)
        == (b.kind, b.backend, b.game, b.seed, b.clock_s, b.iterations)
        and pickle.dumps(a.payload) == pickle.dumps(b.payload)
    )


class TestRoundTrip:
    def test_bytes_round_trip(self):
        assert same_snapshot(snapshot_from_bytes(BLOB), SNAPSHOT)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "engine.ckpt"
        save_checkpoint(SNAPSHOT, path)
        assert same_snapshot(load_checkpoint(path), SNAPSHOT)


class TestSingleByteFlips:
    @settings(max_examples=60, deadline=None)
    @given(
        offset=st.integers(min_value=0, max_value=len(BLOB) - 1),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_any_single_byte_flip_is_detected(self, offset, bit):
        # The acceptance property: no single flipped bit anywhere in
        # a checkpoint can be silently adopted.
        corrupted = bytearray(BLOB)
        corrupted[offset] ^= 1 << bit
        with pytest.raises(CheckpointError):
            snapshot_from_bytes(bytes(corrupted))

    def test_flip_on_disk_detected(self, tmp_path):
        path = tmp_path / "engine.ckpt"
        save_checkpoint(SNAPSHOT, path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x10
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "engine.ckpt"
        save_checkpoint(SNAPSHOT, path)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)


def seal(envelope: dict) -> bytes:
    """Serialise a hand-crafted envelope with a valid whole-blob
    trailer, so the version/shape checks (not the outer CRC) decide."""
    blob = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    return blob + struct.pack("<I", zlib.crc32(blob))


class TestVersionSkew:
    def _envelope(self):
        return pickle.loads(BLOB[:-4])

    def test_unknown_envelope_version_refused(self, tmp_path):
        envelope = self._envelope()
        envelope["envelope_version"] = ENVELOPE_VERSION + 1
        path = tmp_path / "future.ckpt"
        path.write_bytes(seal(envelope))
        with pytest.raises(CheckpointError, match="envelope version"):
            load_checkpoint(path)

    def test_legacy_unchecksummed_envelope_refused(self, tmp_path):
        # The version-1 disk shape (snapshot object inline, no CRC).
        envelope = {
            "magic": "repro-mcts-checkpoint",
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "snapshot": SNAPSHOT,
        }
        path = tmp_path / "legacy.ckpt"
        path.write_bytes(seal(envelope))
        with pytest.raises(CheckpointError, match="envelope version"):
            load_checkpoint(path)

    def test_unknown_snapshot_format_refused(self):
        skewed = dataclasses.replace(
            SNAPSHOT, format_version=CHECKPOINT_FORMAT_VERSION + 1
        )
        with pytest.raises(CheckpointError, match="checkpoint format"):
            snapshot_from_bytes(snapshot_bytes(skewed))

    def test_crc_intact_but_payload_not_a_snapshot(self, tmp_path):
        envelope = self._envelope()
        body = pickle.dumps({"not": "a snapshot"})
        envelope["snapshot_pickle"] = body
        envelope["crc"] = zlib.crc32(body)
        path = tmp_path / "odd.ckpt"
        path.write_bytes(seal(envelope))
        with pytest.raises(CheckpointError, match="EngineSnapshot"):
            load_checkpoint(path)


class TestForeignFiles:
    def test_random_pickle_refused(self, tmp_path):
        path = tmp_path / "foreign.pkl"
        path.write_bytes(pickle.dumps({"weights": [1, 2, 3]}))
        with pytest.raises(
            CheckpointError, match="not an engine checkpoint"
        ):
            load_checkpoint(path)

    def test_text_file_refused(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("these are not the checkpoints you seek\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path)

    def test_empty_file_refused(self, tmp_path):
        path = tmp_path / "empty.ckpt"
        path.write_bytes(b"")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_saving_non_snapshot_refused(self, tmp_path):
        with pytest.raises(CheckpointError, match="EngineSnapshot"):
            save_checkpoint({"not": "a snapshot"}, tmp_path / "x.ckpt")

    def test_error_names_the_file(self, tmp_path):
        path = tmp_path / "who.ckpt"
        path.write_bytes(pickle.dumps(["nope"]))
        with pytest.raises(CheckpointError, match="who.ckpt"):
            load_checkpoint(path)
