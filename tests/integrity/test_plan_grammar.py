"""Fault-plan grammar tests for the corruption families."""

import pytest

from repro.faults import (
    CORRUPT_MODES,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
)

pytestmark = pytest.mark.integrity


class TestCorruptionGrammar:
    def test_corrupt_rate_and_mode(self):
        plan = FaultPlan.parse("corrupt=0.05:nan,seed=7")
        assert plan.corrupt_rate == 0.05
        assert plan.corrupt_mode == "nan"
        assert plan.injects_anything

    def test_corrupt_mode_defaults_to_bitflip(self):
        plan = FaultPlan.parse("corrupt=0.1")
        assert plan.corrupt_mode == "bitflip"

    def test_corrupt_rejects_unknown_mode(self):
        with pytest.raises(FaultPlanError, match="corrupt mode"):
            FaultPlan.parse("corrupt=0.1:gamma_ray")

    def test_all_modes_parse(self):
        for mode in CORRUPT_MODES:
            plan = FaultPlan.parse(f"corrupt=0.5:{mode}")
            assert plan.corrupt_mode == mode

    def test_poison_takes_tree_index(self):
        plan = FaultPlan.parse("poison=tree:3")
        assert plan.poison_tree == 3
        assert plan.injects_anything

    def test_poison_rejects_malformed_values(self):
        for bad in ("3", "tree", "tree:", "tree:-1", "tree:x"):
            with pytest.raises(FaultPlanError):
                FaultPlan.parse(f"poison={bad}")

    def test_disk_rate(self):
        plan = FaultPlan.parse("disk=0.25")
        assert plan.disk_corrupt_rate == 0.25
        assert plan.injects_anything

    def test_rates_validated(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("corrupt=1.5")
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("disk=-0.1")

    def test_scaled_clamps_corruption_rates(self):
        plan = FaultPlan.parse("corrupt=0.8,disk=0.9")
        up = plan.scaled(4.0)
        assert up.corrupt_rate == 1.0
        assert up.disk_corrupt_rate == 1.0
        down = plan.scaled(0.0)
        assert down.corrupt_rate == 0.0
        assert not down.injects_anything


class TestDuplicateKeys:
    def test_duplicate_key_rejected(self):
        with pytest.raises(FaultPlanError, match="duplicate"):
            FaultPlan.parse("launch=0.1,launch=0.2")

    def test_duplicate_corrupt_rejected(self):
        with pytest.raises(
            FaultPlanError, match="duplicate fault plan key 'corrupt'"
        ):
            FaultPlan.parse("corrupt=0.1,corrupt=0.2:nan")

    def test_duplicate_seed_rejected(self):
        with pytest.raises(FaultPlanError, match="duplicate"):
            FaultPlan.parse("seed=1,seed=2")

    def test_repeated_outage_windows_still_allowed(self):
        plan = FaultPlan.parse("outage=0@0.1+0.1,outage=1@0.5+0.1")
        assert len(plan.outages) == 2


class TestCorruptionDraws:
    def test_zero_rates_consume_no_draws(self):
        inj = FaultInjector(FaultPlan(seed=7))
        for n in range(50):
            assert inj.result_corruption(128) is None
            assert inj.disk_corruption(64) is None
        assert inj._corrupt_draws == 0
        assert inj._disk_draws == 0

    def test_corruption_deterministic_under_seed(self):
        def draws(seed):
            inj = FaultInjector(
                FaultPlan(corrupt_rate=0.5, seed=seed)
            )
            return [inj.result_corruption(64) for _ in range(40)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_corruption_lane_within_bounds(self):
        inj = FaultInjector(FaultPlan(corrupt_rate=1.0, seed=7))
        for _ in range(20):
            corruption = inj.result_corruption(8)
            assert corruption is not None
            assert 0 <= corruption.lane < 8

    def test_disk_flip_shape(self):
        inj = FaultInjector(
            FaultPlan(disk_corrupt_rate=1.0, seed=7)
        )
        for _ in range(20):
            offset, mask = inj.disk_corruption(100)
            assert 0 <= offset < 100
            assert mask in {1 << b for b in range(8)}

    def test_corrupt_draws_independent_of_launch_draws(self):
        # Adding a corruption rate must not shift which launches fail.
        base = FaultInjector(
            FaultPlan(launch_fail_rate=0.3, seed=7)
        )
        mixed = FaultInjector(
            FaultPlan(launch_fail_rate=0.3, corrupt_rate=0.5, seed=7)
        )
        base_faults = [
            base.launch_fault(0, i * 1e-6) for i in range(40)
        ]
        mixed_faults = []
        for i in range(40):
            mixed.result_corruption(64)
            mixed_faults.append(mixed.launch_fault(0, i * 1e-6))
        assert base_faults == mixed_faults
