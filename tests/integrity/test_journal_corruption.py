"""Journal corruption: CRC-protected records, mid-file tolerance,
and the ``disk=`` fault family's write-path byte flips."""

import json

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.serve import (
    JournalError,
    JournalWriter,
    SearchRequest,
    read_journal,
)
from repro.serve.journal import JOURNAL_FORMAT_VERSION, _record_crc

pytestmark = pytest.mark.integrity

BUDGET = 4e-4


def request(i, **kwargs):
    defaults = dict(
        request_id=f"r{i}",
        game="tictactoe",
        engine="sequential",
        budget_s=BUDGET,
        seed=100 + i,
    )
    defaults.update(kwargs)
    return SearchRequest(**defaults)


def write_journal(path, n=3):
    writer = JournalWriter(path)
    for i in range(n):
        writer.submit(request(i))
    writer.close()


class TestRecordChecksums:
    def test_every_record_carries_its_crc(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        write_journal(path)
        for line in path.read_text().splitlines():
            record = json.loads(line)
            stored = record.pop("crc")
            assert stored == _record_crc(record)

    def test_header_declares_v2(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        write_journal(path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format_version"] == JOURNAL_FORMAT_VERSION == 2

    def test_tampered_payload_fails_crc_and_is_counted(self, tmp_path):
        # Valid JSON, valid shape -- but the payload no longer matches
        # its CRC.  Pre-CRC readers would have adopted this silently.
        path = tmp_path / "requests.jsonl"
        write_journal(path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[2])
        record["rid"] = "r999"
        lines[2] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        state = read_journal(path)
        assert state.corrupt_records == 1
        assert "r999" not in state.requests
        assert set(state.requests) == {"r0", "r2"}

    def test_single_byte_flip_anywhere_is_tolerated(self, tmp_path):
        # Flip one byte in every non-header record position in turn:
        # the read never raises and always counts exactly one corrupt
        # record.
        path = tmp_path / "requests.jsonl"
        write_journal(path)
        original = path.read_text()
        header_len = len(original.splitlines()[0]) + 1
        for offset in range(header_len, len(original), 7):
            if original[offset] == "\n":
                continue
            raw = bytearray(original.encode())
            raw[offset] ^= 0x08
            path.write_bytes(bytes(raw))
            state = read_journal(path)
            assert state.corrupt_records == 1
            assert len(state.requests) == 2


class TestMidFileTolerance:
    def test_garbage_line_in_the_middle_skipped(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        write_journal(path)
        lines = path.read_text().splitlines()
        lines.insert(2, "\x00\xff not json at all")
        path.write_text("\n".join(lines) + "\n")
        state = read_journal(path)
        assert state.corrupt_records == 1
        assert len(state.requests) == 3

    def test_multiple_corrupt_records_all_counted(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        write_journal(path, n=4)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-10]  # torn
        lines[3] = '{"type": "mystery", "crc": 0}'  # unknown kind
        lines.append('{"type": "subm')  # torn final line
        path.write_text("\n".join(lines) + "\n")
        state = read_journal(path)
        assert state.corrupt_records == 3
        assert set(state.requests) == {"r1", "r3"}

    def test_header_corruption_still_raises(self, tmp_path):
        # A rotten header is a foreign file, not a corrupt record.
        path = tmp_path / "requests.jsonl"
        write_journal(path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[0])
        record["magic"] = "someone-elses-journal"
        lines[0] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="not a request journal"):
            read_journal(path)

    def test_header_crc_mismatch_raises(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        write_journal(path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[0])
        record["crc"] = (record["crc"] + 1) & 0xFFFFFFFF
        lines[0] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt journal header"):
            read_journal(path)


class TestDiskFaultInjection:
    def test_disk_rate_rots_written_records(self, tmp_path):
        # At disk=1.0 every non-header record lands with one byte
        # flipped; the reader skips and counts them all.
        path = tmp_path / "requests.jsonl"
        injector = FaultInjector(
            FaultPlan.parse("disk=1.0,seed=7")
        )
        writer = JournalWriter(path, injector=injector)
        for i in range(5):
            writer.submit(request(i))
        writer.close()
        state = read_journal(path)
        assert state.corrupt_records == 5
        assert state.requests == {}
        assert injector.counters["disk_corrupt"] == 5

    def test_partial_disk_rate_loses_only_hit_records(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        injector = FaultInjector(
            FaultPlan.parse("disk=0.3,seed=11")
        )
        writer = JournalWriter(path, injector=injector)
        for i in range(20):
            writer.submit(request(i))
        writer.close()
        state = read_journal(path)
        hit = injector.counters["disk_corrupt"]
        assert 0 < hit < 20
        assert state.corrupt_records == hit
        assert len(state.requests) == 20 - hit

    def test_zero_disk_rate_writes_cleanly(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        injector = FaultInjector(FaultPlan.parse("seed=7"))
        writer = JournalWriter(path, injector=injector)
        for i in range(5):
            writer.submit(request(i))
        writer.close()
        state = read_journal(path)
        assert state.corrupt_records == 0
        assert len(state.requests) == 5
        assert injector._disk_draws == 0

    def test_header_exempt_from_injection(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        JournalWriter(
            path,
            injector=FaultInjector(FaultPlan.parse("disk=1.0,seed=7")),
        ).close()
        state = read_journal(path)  # header intact -> no raise
        assert state.corrupt_records == 0
