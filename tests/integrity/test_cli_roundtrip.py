"""`serve-bench --faults corrupt=...` round-trips through the CLI
and prints the detection/quarantine/escape accounting."""

import pytest

from repro.cli import main

pytestmark = pytest.mark.integrity

COMMON = [
    "serve-bench",
    "--loads",
    "6",
    "--devices",
    "2",
    "--budget-scale",
    "0.25",
]


class TestServeBenchCorruption:
    def test_corrupt_plan_prints_integrity_rows(self, capsys):
        code = main(
            COMMON
            + ["--faults", "corrupt=0.3:bitflip,seed=7"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "corrupt detected" in out
        assert "corrupt escaped" in out
        assert "trees quarantined" in out
        assert "results rejected" in out

    def test_no_defenses_flag_disables_detection(self, capsys):
        code = main(
            COMMON
            + [
                "--faults",
                "corrupt=0.3:bitflip,seed=7",
                "--no-defenses",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        # Escapes (not detections) dominate with the defenses off.
        assert "corrupt escaped" in out

    def test_poison_plan_round_trips(self, capsys):
        code = main(COMMON + ["--faults", "poison=tree:0,seed=7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "requests/s" in out

    def test_bad_corrupt_mode_rejected_at_parse(self, capsys):
        with pytest.raises(SystemExit):
            main(COMMON + ["--faults", "corrupt=0.1:cosmic"])
        assert "unknown corrupt mode" in capsys.readouterr().err

    def test_clean_run_prints_no_integrity_rows(self, capsys):
        code = main(COMMON)
        out = capsys.readouterr().out
        assert code == 0
        assert "corrupt detected" not in out
