"""Property-based checkpoint oracle (Hypothesis).

For any registered engine kind, either backend, and any crash
iteration *k* within the run: ``snapshot at k -> finish`` and
``snapshot at k -> restore into a fresh engine -> finish`` are
indistinguishable -- same chosen move, same per-move root statistics,
same counters, same virtual elapsed time, and the engine RNG lands in
the same state.  This generalises the fixed-k differential tests to
arbitrary interrupt points.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import make_engine
from repro.games import make_game
from tests.core.test_differential import BUDGET_S, SEED, SMALL_SPECS


class Boom(RuntimeError):
    pass


#: Multi-GPU checkpoints land at completed-rank boundaries (two ranks
#: in the small spec), so its crash iteration is capped at 1; every
#: other kind runs well past 3 iterations under BUDGET_S.
def _cases():
    cases = []
    for kind, spec in SMALL_SPECS.items():
        max_k = 1 if kind == "multigpu" else 3
        for backend in ("", "@arena"):
            cases.append((spec + backend, max_k))
    # WU-UCT accounting on the shared-tree engines.
    for spec in ("tree:2@wuct", "pipeline:2@wuct"):
        for backend in ("", "@arena"):
            cases.append((spec + backend, 3))
    return cases


CASES = _cases()


def _finish_from(spec, game, k):
    """(uninterrupted-from-k result, final rng state) both ways."""
    engine = make_engine(spec, game, SEED)
    captured = {}

    def hook(eng, iterations):
        if iterations >= k and "snap" not in captured:
            captured["snap"] = eng.snapshot()
            raise Boom()

    engine.iteration_hook = hook
    with pytest.raises(Boom):
        engine.search(game.initial_state(), BUDGET_S)
    fresh = make_engine(spec, game, SEED)
    fresh.restore(captured["snap"])
    return fresh.resume(), fresh.rng.getstate()


@pytest.mark.faults
@settings(max_examples=20, deadline=None)
@given(case=st.sampled_from(CASES), data=st.data())
def test_restore_resume_indistinguishable_from_continuing(case, data):
    spec, max_k = case
    k = data.draw(st.integers(1, max_k), label="crash iteration")
    game = make_game("tictactoe")

    baseline = make_engine(spec, game, SEED)
    base = baseline.search(game.initial_state(), BUDGET_S)
    base_rng = baseline.rng.getstate()

    resumed, resumed_rng = _finish_from(spec, game, k)
    assert resumed.move == base.move
    assert resumed.stats == base.stats
    assert resumed.iterations == base.iterations
    assert resumed.simulations == base.simulations
    assert resumed.elapsed_s == base.elapsed_s
    assert resumed_rng == base_rng
