"""Tests for the search tree: statistics conventions are load-bearing."""

import pytest

from repro.core.tree import Node, SearchTree, aggregate_stats
from repro.games import Reversi, TicTacToe
from repro.rng import XorShift64Star


@pytest.fixture
def ttt():
    return TicTacToe()


def make_tree(game, ucb_c=1.0, seed=1, state=None):
    return SearchTree(
        game, state or game.initial_state(), XorShift64Star(seed), ucb_c
    )


class TestConstruction:
    def test_root_has_all_moves_untried(self, ttt):
        tree = make_tree(ttt)
        assert sorted(tree.root.untried) == list(range(9))
        assert tree.node_count == 1
        assert tree.max_depth == 0

    def test_root_mover_is_opponent(self, ttt):
        tree = make_tree(ttt)
        assert tree.root.to_move == 1
        assert tree.root.mover == -1

    def test_terminal_root_rejected(self, ttt):
        s = ttt.initial_state()
        for m in (0, 3, 1, 4, 2):  # X wins the top row
            s = ttt.apply(s, m)
        with pytest.raises(ValueError, match="terminal"):
            make_tree(ttt, state=s)

    def test_negative_ucb_c_rejected(self, ttt):
        with pytest.raises(ValueError):
            SearchTree(
                ttt, ttt.initial_state(), XorShift64Star(1), ucb_c=-0.1
            )


class TestSelectExpand:
    def test_first_calls_expand_root_children(self, ttt):
        tree = make_tree(ttt)
        seen_moves = set()
        for i in range(9):
            node, depth = tree.select_expand()
            assert depth == 1
            assert node.parent is tree.root
            seen_moves.add(node.move)
            tree.backprop_winner(node, 0)  # keep visits > 0
        assert seen_moves == set(range(9))
        assert tree.node_count == 10

    def test_descends_after_full_expansion(self, ttt):
        tree = make_tree(ttt)
        for _ in range(9):
            node, _ = tree.select_expand()
            tree.backprop_winner(node, 0)
        node, depth = tree.select_expand()
        assert depth == 2
        assert node.parent.parent is tree.root
        assert tree.max_depth == 2

    def test_expansion_order_is_seed_dependent(self, ttt):
        a = make_tree(ttt, seed=1).select_expand()[0].move
        b = make_tree(ttt, seed=2).select_expand()[0].move
        c = make_tree(ttt, seed=1).select_expand()[0].move
        assert a == c
        # different seeds will usually expand a different first move
        # (not guaranteed for any single pair, so only check determinism
        # plus the *possibility* of difference across a few seeds)
        moves = {
            make_tree(ttt, seed=s).select_expand()[0].move
            for s in range(8)
        }
        assert len(moves) > 1

    def test_terminal_node_returned_as_is(self, ttt):
        # A state one move from the end: X to move, wins with move 2.
        s = ttt.initial_state()
        for m in (0, 3, 1, 4):
            s = ttt.apply(s, m)
        tree = make_tree(ttt, state=s)
        terminals = 0
        for _ in range(40):
            node, _ = tree.select_expand()
            if node.terminal:
                terminals += 1
                assert node.winner in (-1, 0, 1)
                tree.backprop_winner(node, node.winner)
            else:
                tree.backprop_winner(node, 0)
        assert terminals > 0


class TestBackprop:
    def test_visits_propagate_to_root(self, ttt):
        tree = make_tree(ttt)
        node, _ = tree.select_expand()
        tree.backprop(node, 10, 6, 3, 1)
        assert tree.root.visits == 10
        assert node.visits == 10

    def test_wins_use_mover_perspective(self, ttt):
        tree = make_tree(ttt)
        node, _ = tree.select_expand()
        # node.mover == 1 (X moved into it); root.mover == -1
        tree.backprop(node, 10, 6, 3, 1)
        assert node.wins == pytest.approx(6 + 0.5)
        assert tree.root.wins == pytest.approx(3 + 0.5)

    def test_backprop_winner_shorthand(self, ttt):
        tree = make_tree(ttt)
        node, _ = tree.select_expand()
        tree.backprop_winner(node, 1, simulations=4)
        assert node.wins == 4.0
        assert tree.root.wins == 0.0
        assert node.visits == 4

    def test_draws_count_half_for_both(self, ttt):
        tree = make_tree(ttt)
        node, _ = tree.select_expand()
        tree.backprop_winner(node, 0, simulations=2)
        assert node.wins == pytest.approx(1.0)
        assert tree.root.wins == pytest.approx(1.0)


class TestBestChild:
    def test_prefers_higher_winrate_at_equal_visits(self, ttt):
        tree = make_tree(ttt, ucb_c=0.5)
        kids = []
        for _ in range(9):
            node, _ = tree.select_expand()
            kids.append(node)
            tree.backprop_winner(node, 0)
        winner_child = kids[3]
        tree.backprop(winner_child, 10, 10, 0, 0)
        for other in kids:
            if other is not winner_child:
                tree.backprop(other, 10, 0, 10, 0)
        assert tree.best_child(tree.root) is winner_child

    def test_exploration_pulls_to_rare_nodes_with_big_c(self, ttt):
        tree = make_tree(ttt, ucb_c=50.0)
        kids = []
        for _ in range(9):
            node, _ = tree.select_expand()
            kids.append(node)
            tree.backprop_winner(node, 0)
        rare = kids[5]
        for other in kids:
            if other is not rare:
                tree.backprop(other, 50, 50, 0, 0)  # great but well-known
        assert tree.best_child(tree.root) is rare


class TestVirtualLoss:
    def test_apply_and_revert_round_trip(self, ttt):
        tree = make_tree(ttt)
        node, _ = tree.select_expand()
        tree.apply_virtual_loss(node, 2.0)
        assert node.vloss == 2.0
        assert tree.root.vloss == 2.0
        tree.revert_virtual_loss(node, 2.0)
        assert node.vloss == 0.0
        assert tree.root.vloss == 0.0

    def test_virtual_loss_diverts_selection(self, ttt):
        tree = make_tree(ttt, ucb_c=1.0)
        kids = []
        for _ in range(9):
            node, _ = tree.select_expand()
            kids.append(node)
            tree.backprop(node, 5, 3, 1, 1)
        first = tree.best_child(tree.root)
        tree.apply_virtual_loss(first, 50.0)
        second = tree.best_child(tree.root)
        assert second is not first
        tree.revert_virtual_loss(first, 50.0)
        assert tree.best_child(tree.root) is first


class TestStats:
    def test_root_stats_shape(self, ttt):
        tree = make_tree(ttt)
        for _ in range(9):
            node, _ = tree.select_expand()
            tree.backprop_winner(node, 1)
        stats = tree.root_stats()
        assert set(stats) == set(range(9))
        for visits, wins in stats.values():
            assert visits == 1

    def test_aggregate_stats_sums_trees(self, ttt):
        trees = [make_tree(ttt, seed=s) for s in (1, 2)]
        for tree in trees:
            for _ in range(9):
                node, _ = tree.select_expand()
                tree.backprop_winner(node, 1)
        agg = aggregate_stats(trees)
        assert set(agg) == set(range(9))
        for visits, _ in agg.values():
            assert visits == 2

    def test_depth_of_and_iter_nodes(self, ttt):
        tree = make_tree(ttt)
        for _ in range(12):
            node, _ = tree.select_expand()
            tree.backprop_winner(node, 0)
        nodes = list(tree.iter_nodes())
        assert len(nodes) == tree.node_count
        assert max(tree.depth_of(n) for n in nodes) == tree.max_depth


class TestReversiTree:
    def test_pass_moves_enter_the_tree(self):
        # Position where white must pass: tree must branch through it.
        from repro.games import PASS_MOVE, ReversiState
        from repro.util.bitops import square_mask

        game = Reversi()
        s = ReversiState(
            black=square_mask(0, 0),
            white=square_mask(0, 1),
            to_move=-1,
        )
        tree = SearchTree(game, s, XorShift64Star(3))
        node, depth = tree.select_expand()
        assert node.move == PASS_MOVE
        assert depth == 1
