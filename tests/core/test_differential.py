"""Differential tests across the engine-spec registry.

Three oracles:

* every registered engine kind is exactly reproducible -- the same
  spec, seed and budget produce the identical chosen move and root
  visit totals across independent runs;
* a block-parallel engine with one thread per block is root
  parallelism in disguise: ``block:Nx1`` must agree with ``root:N`` on
  the *aggregated* root statistics (total visits, simulations, visited
  moves) under a fixed iteration budget.  Per-move statistics differ
  -- the two engines draw from differently-derived RNG streams -- so
  the oracle compares what the algorithms must share, not incidental
  stream layout;
* the compiled playout executor is a pure performance knob: every
  kind x {node, arena} x {numpy, compiled} cell must produce the
  bit-identical search (move, per-move stats, counters, virtual
  time), whether the C library actually loaded or the executor fell
  back to NumPy.
"""

import os

import pytest

from repro.core.spec import engine_kinds, make_engine
from repro.games import make_game

#: One small spec per registered engine kind -- update when a kind is
#: registered without a row here (the registry test enforces this).
SMALL_SPECS = {
    "sequential": "sequential",
    "leaf": "leaf:1x32",
    "block": "block:2x8",
    "hybrid": "hybrid:2x32",
    "root": "root:2",
    "tree": "tree:2",
    "pipeline": "pipeline:2",
    "multigpu": "multigpu:2x2x16",
}

#: Modifier-decorated variants of the shared-tree engines, exercised
#: through the same reproducibility / backend-equivalence oracles.
MODIFIER_SPECS = ["tree:2@wuct", "pipeline:2@wuct", "tree:2@vloss=1.5"]

BUDGET_S = 4e-4
SEED = 2011


def test_every_registered_kind_is_covered():
    assert {k.name for k in engine_kinds()} == set(SMALL_SPECS)


def _run(spec: str, game_name: str = "tictactoe"):
    game = make_game(game_name)
    engine = make_engine(spec, game, SEED)
    return engine.search(game.initial_state(), BUDGET_S)


@pytest.mark.parametrize(
    "spec", sorted(SMALL_SPECS.values()) + MODIFIER_SPECS
)
def test_fixed_seed_reproduces_identical_search(spec):
    first = _run(spec)
    second = _run(spec)
    assert first.move == second.move
    assert first.stats == second.stats
    assert first.simulations == second.simulations
    assert first.iterations == second.iterations
    assert first.elapsed_s == second.elapsed_s


@pytest.mark.parametrize(
    "spec", sorted(SMALL_SPECS.values()) + MODIFIER_SPECS
)
def test_arena_backend_matches_node_backend(spec):
    """The array arena is a drop-in replacement: same spec + seed on
    ``@arena`` must reproduce the node backend's search bit for bit --
    chosen move, per-move root stats, counters, virtual time, and the
    per-tree shape of the forest."""
    node = _run(spec)
    arena = _run(f"{spec}@arena")
    assert arena.move == node.move
    assert arena.stats == node.stats
    assert arena.iterations == node.iterations
    assert arena.simulations == node.simulations
    assert arena.elapsed_s == node.elapsed_s
    assert arena.max_depth == node.max_depth
    assert arena.tree_nodes == node.tree_nodes
    for key in ("tree.depth", "tree.nodes"):
        assert arena.extras.get(key) == node.extras.get(key)


@pytest.mark.parametrize("game_name", ["connect4", "reversi"])
def test_arena_backend_matches_node_backend_other_games(game_name):
    node = _run("block:2x8", game_name)
    arena = _run("block:2x8@arena", game_name)
    assert arena.move == node.move
    assert arena.stats == node.stats
    assert arena.simulations == node.simulations


def _assert_identical(a, b):
    assert a.move == b.move
    assert a.stats == b.stats
    assert a.iterations == b.iterations
    assert a.simulations == b.simulations
    assert a.elapsed_s == b.elapsed_s
    assert a.max_depth == b.max_depth
    assert a.tree_nodes == b.tree_nodes


@pytest.mark.compiled
@pytest.mark.parametrize(
    "spec", sorted(SMALL_SPECS.values()) + MODIFIER_SPECS
)
@pytest.mark.parametrize("backend_suffix", ["", "@arena"])
def test_compiled_playout_matches_numpy(spec, backend_suffix):
    """The full kind x backend x executor wall: ``@compiled`` never
    changes a search, on either tree backend.  When the C toolchain is
    absent the compiled executor silently runs NumPy, so this also
    pins the fallback to exact identity."""
    baseline = _run(f"{spec}{backend_suffix}")
    compiled = _run(f"{spec}{backend_suffix}@compiled")
    _assert_identical(compiled, baseline)


@pytest.mark.compiled
@pytest.mark.parametrize("game_name", ["connect4", "reversi"])
def test_compiled_playout_matches_numpy_other_games(game_name):
    baseline = _run("block:2x8", game_name)
    compiled = _run("block:2x8@compiled", game_name)
    _assert_identical(compiled, baseline)


@pytest.mark.compiled
def test_compiled_disabled_env_forces_identical_fallback(monkeypatch):
    """``REPRO_COMPILED=0`` must flip an ``@compiled`` engine onto the
    NumPy path without changing a single bit of its search."""
    enabled = _run("block:2x8@compiled", "reversi")
    monkeypatch.setenv("REPRO_COMPILED", "0")
    from repro.compiled import compiled_available

    assert not compiled_available()
    disabled = _run("block:2x8@compiled", "reversi")
    _assert_identical(disabled, enabled)
    monkeypatch.delenv("REPRO_COMPILED")
    assert os.environ.get("REPRO_COMPILED") is None


@pytest.mark.parametrize("n_trees", [2, 4])
def test_block_with_one_thread_matches_root_aggregates(n_trees):
    game = make_game("tictactoe")
    iterations = 50

    def aggregate(spec):
        engine = make_engine(spec, game, SEED, max_iterations=iterations)
        result = engine.search(game.initial_state(), 1e9)
        visits = sum(v for v, _ in result.stats.values())
        return visits, result.simulations, frozenset(result.stats)

    block = aggregate(f"block:{n_trees}x1")
    root = aggregate(f"root:{n_trees}")
    assert block == root
    # Both ran every tree for the full iteration budget.
    assert block[0] == n_trees * iterations


def test_block_trees_report_matches_root():
    game = make_game("tictactoe")
    block = make_engine("block:4x1", game, SEED, max_iterations=10)
    root = make_engine("root:4", game, SEED, max_iterations=10)
    rb = block.search(game.initial_state(), 1e9)
    rr = root.search(game.initial_state(), 1e9)
    assert rb.trees == rr.trees == 4
