"""Crash/resume differential tests for engine checkpointing.

The core oracle: a search interrupted at iteration *k*, snapshotted,
restored into a **fresh** engine and resumed must finish bit-identical
to the uninterrupted run -- same chosen move, same per-move root
statistics, same iteration/simulation counters, same virtual elapsed
time.  This holds for every registered engine kind on both tree
backends, with the snapshot round-tripped through its serialised byte
form (so the on-disk format, not just the live object graph, is what
resumes).
"""

import dataclasses
import pickle

import pytest

from repro.core import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
    snapshot_bytes,
    snapshot_from_bytes,
)
from repro.core.spec import make_engine
from repro.games import make_game
from tests.core.test_differential import BUDGET_S, SEED, SMALL_SPECS

#: Iteration at which the injected crash lands.  Multi-GPU engines
#: checkpoint at completed-rank boundaries (iterations run 1..n_gpus),
#: so their crash must land inside that range.
CRASH_AT = {"multigpu": 1}
DEFAULT_CRASH_AT = 3

ALL_SPECS = (
    sorted(SMALL_SPECS.values())
    + sorted(f"{spec}@arena" for spec in SMALL_SPECS.values())
    # WU-UCT variants of the shared-tree engines on both backends.
    + [
        "tree:2@wuct",
        "tree:2@wuct@arena",
        "pipeline:2@wuct",
        "pipeline:2@wuct@arena",
    ]
)


class Boom(RuntimeError):
    """The injected mid-search crash."""


def _crash_at(spec: str) -> int:
    kind = spec.split(":", 1)[0].split("@", 1)[0]
    return CRASH_AT.get(kind, DEFAULT_CRASH_AT)


def _engine(spec: str, game):
    return make_engine(spec, game, SEED)


def _uninterrupted(spec: str, game):
    engine = _engine(spec, game)
    return engine.search(game.initial_state(), BUDGET_S)


def _crashed_snapshot(spec: str, game, k: int):
    """Run ``spec`` until iteration ``k``, snapshot there, and crash."""
    engine = _engine(spec, game)
    captured = {}

    def hook(eng, iterations):
        if iterations >= k and "snap" not in captured:
            captured["snap"] = eng.snapshot()
            raise Boom()

    engine.iteration_hook = hook
    with pytest.raises(Boom):
        engine.search(game.initial_state(), BUDGET_S)
    return captured["snap"]


def _assert_same_result(resumed, base):
    assert resumed.move == base.move
    assert resumed.stats == base.stats
    assert resumed.iterations == base.iterations
    assert resumed.simulations == base.simulations
    assert resumed.elapsed_s == base.elapsed_s


@pytest.mark.faults
@pytest.mark.parametrize("spec", ALL_SPECS)
def test_crash_restore_resume_is_bit_identical(spec):
    game = make_game("tictactoe")
    base = _uninterrupted(spec, game)
    snap = _crashed_snapshot(spec, game, _crash_at(spec))

    # Round-trip through the serialised form: what resumes is what a
    # journal or checkpoint file would hold, not the live snapshot.
    snap = snapshot_from_bytes(snapshot_bytes(snap))

    fresh = _engine(spec, game)
    fresh.restore(snap)
    _assert_same_result(fresh.resume(), base)


@pytest.mark.faults
def test_resume_steps_matches_direct_resume():
    """Generator engines resume through the serving path too: driving
    ``resume_steps`` by hand with the session's restored executor must
    equal the uninterrupted search."""
    from repro.core.base import drive_search

    game = make_game("tictactoe")
    base = _uninterrupted("sequential", game)
    snap = _crashed_snapshot("sequential", game, DEFAULT_CRASH_AT)

    fresh = _engine("sequential", game)
    fresh.restore(snap)
    executor = fresh._live["executor"]
    assert executor is not None  # search() parked one pre-crash
    _assert_same_result(
        drive_search(fresh.resume_steps(), executor), base
    )


def test_snapshot_mid_search_does_not_perturb_the_run():
    """Taking a snapshot is observationally free: a run that snapshots
    every iteration finishes identical to one that never does."""
    game = make_game("tictactoe")
    base = _uninterrupted("tree:2", game)

    engine = _engine("tree:2", game)
    snaps = []
    engine.iteration_hook = lambda eng, n: snaps.append(eng.snapshot())
    observed = engine.search(game.initial_state(), BUDGET_S)
    _assert_same_result(observed, base)
    assert snaps  # the hook actually fired
    assert [s.iterations for s in snaps] == sorted(
        {s.iterations for s in snaps}
    )


def test_snapshot_outside_session_rejected():
    game = make_game("tictactoe")
    engine = _engine("sequential", game)
    with pytest.raises(CheckpointError, match="no live search"):
        engine.snapshot()
    with pytest.raises(CheckpointError, match="no session to resume"):
        engine.resume()


class TestCheckpointFile:
    def _snapshot(self):
        game = make_game("tictactoe")
        return _crashed_snapshot("sequential", game, DEFAULT_CRASH_AT)

    def test_file_round_trip(self, tmp_path):
        snap = self._snapshot()
        path = tmp_path / "search.ckpt"
        save_checkpoint(snap, path)
        loaded = load_checkpoint(path)
        assert loaded == snap

        game = make_game("tictactoe")
        fresh = _engine("sequential", game)
        fresh.restore(loaded)
        _assert_same_result(
            fresh.resume(), _uninterrupted("sequential", game)
        )

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(pickle.dumps({"surprise": 1}))
        with pytest.raises(CheckpointError, match="not .* checkpoint"):
            load_checkpoint(path)

    def test_version_mismatch_rejected(self, tmp_path):
        snap = dataclasses.replace(self._snapshot(), format_version=99)
        path = tmp_path / "future.ckpt"
        save_checkpoint(snap, path)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_restore_rejects_mismatched_engine(self):
        snap = self._snapshot()
        game = make_game("tictactoe")
        with pytest.raises(CheckpointError, match="kind"):
            _engine("tree:2", game).restore(snap)
        with pytest.raises(CheckpointError, match="seed"):
            make_engine("sequential", game, SEED + 1).restore(snap)
        with pytest.raises(CheckpointError, match="game"):
            _engine(
                "sequential", make_game("connect4")
            ).restore(snap)
        with pytest.raises(CheckpointError, match="backend"):
            _engine("sequential@arena", game).restore(snap)

    def test_restore_rejects_mismatched_parallel_mode(self):
        game = make_game("tictactoe")
        for kind in ("tree", "pipeline"):
            snap = _crashed_snapshot(f"{kind}:2@wuct", game, 2)
            with pytest.raises(CheckpointError, match="mode"):
                _engine(f"{kind}:2", game).restore(snap)
