"""Behavioural tests for the shared-tree engine family.

``tree:N`` (virtual loss / WU-UCT) and ``pipeline:N`` (3PMCTS staging)
share one tree, one in-flight marker mechanism, and one mode-validation
path; these tests pin the semantics the differential suite cannot see:
how the two accounting modes actually differ, and how the pipeline's
virtual-clock overlap behaves.
"""

import math

import pytest

from repro.core import PipelineMcts, TreeParallelMcts, make_engine
from repro.core.tree import SearchTree
from repro.core.tree_parallel import resolve_shared_tree_mode
from repro.games import TicTacToe, make_game
from repro.rng import XorShift64Star

BUDGET = 2e-3
GAME = TicTacToe()


class TestModeResolution:
    def test_vloss_defaults_to_unit_marker(self):
        assert resolve_shared_tree_mode("vloss", None) == ("vloss", 1.0)
        assert resolve_shared_tree_mode("vloss", 2.5) == ("vloss", 2.5)

    def test_wuct_marker_is_always_one(self):
        assert resolve_shared_tree_mode("wuct", None) == ("wuct", 1.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="vloss"):
            resolve_shared_tree_mode("banzai", None)


class TestWuctSelection:
    """WU-UCT: exploration sees in-flight counts, the mean does not."""

    def _marked_tree(self, mode):
        """A root with every child expanded: one *strong* child
        (perfect completed record) carrying a heavy in-flight marker,
        the rest weak but unmarked."""
        tree = SearchTree(
            GAME,
            GAME.initial_state(),
            XorShift64Star(1),
            parallel_mode=mode,
        )
        while tree.root.untried:
            ref, _ = tree.select_expand()
            tree.backprop_winner(ref, 0)
        strong = tree.root.children[0]
        for child in tree.root.children:
            child.visits, child.wins, child.vloss = 2.0, 0.0, 0.0
        strong.wins = 2.0
        tree.root.visits = 2.0 * len(tree.root.children)
        tree.root.vloss = 0.0
        tree.apply_virtual_loss(strong, 10.0)
        return tree, strong

    def test_vloss_marker_drags_the_strong_child_down(self):
        tree, strong = self._marked_tree("vloss")
        # Mean collapses to wins/(visits + marker) = 2/12, so the
        # marked child loses to unvisited-looking siblings.
        assert tree.best_child(tree.root) is not strong

    def test_wuct_mean_ignores_in_flight_samples(self):
        tree, strong = self._marked_tree("wuct")
        # Mean stays wins/completed = 1.0; only the exploration term
        # sees the marker, which is not enough to dethrone it.
        assert tree.best_child(tree.root) is strong


class TestWuctSearch:
    def test_wuct_and_vloss_diverge(self):
        base = TreeParallelMcts(GAME, 5, n_workers=8).search(
            GAME.initial_state(), BUDGET
        )
        wuct = TreeParallelMcts(GAME, 5, n_workers=8, mode="wuct").search(
            GAME.initial_state(), BUDGET
        )
        assert base.stats != wuct.stats

    def test_single_worker_modes_agree(self):
        """With one worker there is never an in-flight marker at
        selection time, so the two modes are the same algorithm."""
        a = TreeParallelMcts(GAME, 5, n_workers=1).search(
            GAME.initial_state(), BUDGET
        )
        b = TreeParallelMcts(GAME, 5, n_workers=1, mode="wuct").search(
            GAME.initial_state(), BUDGET
        )
        assert a.stats == b.stats
        assert a.move == b.move


class TestPipeline:
    def test_overlap_beats_serial_round_time(self):
        """The pipeline's elapsed virtual time is less than the sum of
        its stage busy times: CPU work genuinely overlaps the device."""
        engine = PipelineMcts(GAME, 3, n_workers=8)
        res = engine.search(GAME.initial_state(), BUDGET)
        serial = (
            res.extras["pipeline.select_s"]
            + res.extras["pipeline.backprop_s"]
            + res.extras["pipeline.playout_s"]
        )
        assert res.elapsed_s < serial
        assert 0.0 < res.extras["pipeline.cpu_occupancy"] <= 1.0
        assert 0.0 < res.extras["pipeline.device_occupancy"] <= 1.0

    def test_rounds_and_iterations_consistent(self):
        engine = PipelineMcts(GAME, 3, n_workers=4)
        res = engine.search(GAME.initial_state(), BUDGET)
        rounds = res.extras["pipeline.rounds"]
        assert rounds > 1
        # Each round retires at most n_workers playouts.
        assert res.iterations <= rounds * 4

    def test_pipeline_differs_from_tree_parallel(self):
        """One-round staleness is observable: the pipeline and the
        synchronous shared-tree engine see different statistics."""
        tree = TreeParallelMcts(GAME, 5, n_workers=4).search(
            GAME.initial_state(), BUDGET
        )
        pipe = PipelineMcts(GAME, 5, n_workers=4).search(
            GAME.initial_state(), BUDGET
        )
        assert tree.stats != pipe.stats

    def test_iteration_cap_respected(self):
        engine = PipelineMcts(GAME, 3, n_workers=4, max_iterations=10)
        res = engine.search(GAME.initial_state(), 1e9)
        # The cap is checked at round boundaries; a pipeline can
        # overshoot by the retiring round plus the in-flight drain.
        assert res.iterations <= 10 + 2 * 4

    @pytest.mark.parametrize("game_name", ["tictactoe", "connect4"])
    def test_all_root_moves_get_visits(self, game_name):
        game = make_game(game_name)
        res = make_engine("pipeline:4", game, 11).search(
            game.initial_state(), BUDGET
        )
        assert sum(v for v, _ in res.stats.values()) > 0
        assert all(
            not math.isnan(w) for _, w in res.stats.values()
        )
