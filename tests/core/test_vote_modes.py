"""Tests for root-vote aggregation modes (sum vs majority)."""

import pytest

from repro.core import BlockParallelMcts, RootParallelMcts
from repro.core.tree import SearchTree, majority_vote_stats
from repro.games import TicTacToe
from repro.rng import XorShift64Star

GAME = TicTacToe()


class TestMajorityVoteStats:
    def make_tree_with_preference(self, move, seed):
        tree = SearchTree(GAME, GAME.initial_state(), XorShift64Star(seed))
        for _ in range(9):
            node, _ = tree.select_expand()
            tree.backprop_winner(node, 0)
        # inflate the chosen move's child visits
        for child in tree.root.children:
            if child.move == move:
                tree.backprop(child, 10, 5, 5, 0)
        return tree

    def test_one_ballot_per_tree(self):
        trees = [
            self.make_tree_with_preference(4, seed=1),
            self.make_tree_with_preference(4, seed=2),
            self.make_tree_with_preference(0, seed=3),
        ]
        ballots = majority_vote_stats(trees)
        assert ballots[4][0] == 2.0
        assert ballots[0][0] == 1.0

    def test_majority_wins_despite_visit_mass(self):
        # Two trees prefer move 4 weakly; one prefers move 0 strongly.
        trees = [
            self.make_tree_with_preference(4, seed=1),
            self.make_tree_with_preference(4, seed=2),
            self.make_tree_with_preference(0, seed=3),
        ]
        tree0 = trees[2]
        for child in tree0.root.children:
            if child.move == 0:
                tree0.backprop(child, 1000, 600, 400, 0)
        from repro.core import select_move

        assert select_move(majority_vote_stats(trees)) == 4


class TestEngineVoteModes:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="vote mode"):
            RootParallelMcts(GAME, seed=1, n_trees=2, vote="plurality+")
        with pytest.raises(ValueError, match="vote mode"):
            BlockParallelMcts(
                GAME, seed=1, blocks=2, threads_per_block=32, vote="x"
            )

    @pytest.mark.parametrize("vote", ["sum", "majority"])
    def test_both_modes_search(self, vote):
        engine = RootParallelMcts(GAME, seed=2, n_trees=4, vote=vote)
        result = engine.search(GAME.initial_state(), budget_s=0.002)
        assert result.move in range(9)

    @pytest.mark.parametrize("vote", ["sum", "majority"])
    def test_block_parallel_modes(self, vote):
        engine = BlockParallelMcts(
            GAME, seed=2, blocks=2, threads_per_block=32, vote=vote
        )
        result = engine.search(GAME.initial_state(), budget_s=0.002)
        assert result.move in range(9)

    def test_majority_still_finds_tactics(self):
        s = GAME.initial_state()
        for m in (6, 0, 7, 1):
            s = GAME.apply(s, m)  # X wins with 8
        engine = BlockParallelMcts(
            GAME, seed=5, blocks=2, threads_per_block=32, vote="majority"
        )
        assert engine.search(s, budget_s=0.004).move == 8
