"""Tests for the UCB1-Tuned selection variant."""

import pytest

from repro.core import SequentialMcts
from repro.core.tree import SearchTree
from repro.games import TicTacToe
from repro.rng import XorShift64Star

GAME = TicTacToe()


def make_tree(rule, ucb_c=1.0):
    return SearchTree(
        GAME,
        GAME.initial_state(),
        XorShift64Star(1),
        ucb_c,
        selection_rule=rule,
    )


class TestTunedRule:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown selection rule"):
            make_tree("ucb3")

    def test_tuned_prefers_higher_winrate_at_equal_visits(self):
        tree = make_tree("ucb1_tuned", ucb_c=0.5)
        kids = []
        for _ in range(9):
            node, _ = tree.select_expand()
            kids.append(node)
            tree.backprop_winner(node, 0)
        star = kids[2]
        tree.backprop(star, 20, 18, 2, 0)
        for other in kids:
            if other is not star:
                tree.backprop(other, 20, 5, 15, 0)
        assert tree.best_child(tree.root) is star

    def test_tuned_width_capped_at_quarter(self):
        """With p=0.5 the tuned width equals the 1/4 cap, so tuned and
        plain UCB1 with c' = c/2 agree on equal-visit children."""
        import math

        tuned = make_tree("ucb1_tuned", ucb_c=1.0)
        for _ in range(9):
            node, _ = tuned.select_expand()
            tuned.backprop(node, 10, 5, 5, 0)
        # Every child identical: selection must still return a child.
        child = tuned.best_child(tuned.root)
        n = child.visits
        p = child.wins / n
        width = min(0.25, p * (1 - p) + math.sqrt(2 * math.log(90) / n))
        assert width == 0.25

    def test_engine_accepts_selection_rule(self):
        engine = SequentialMcts(
            GAME, seed=5, selection_rule="ucb1_tuned"
        )
        result = engine.search(GAME.initial_state(), budget_s=0.002)
        assert result.move in range(9)

    def test_rules_can_disagree(self):
        """Craft stats where plain UCB1 explores a rare child but
        tuned's variance cap keeps it on the exploit child."""
        plain = make_tree("ucb1", ucb_c=1.0)
        tuned = make_tree("ucb1_tuned", ucb_c=1.0)
        for tree in (plain, tuned):
            kids = []
            for _ in range(9):
                node, _ = tree.select_expand()
                kids.append(node)
            # strong child: many visits, decent rate
            tree.backprop(kids[0], 100, 60, 40, 0)
            # rare child: few visits, low rate (low variance for tuned)
            tree.backprop(kids[1], 4, 0, 4, 0)
            for other in kids[2:]:
                tree.backprop(other, 50, 10, 40, 0)
        plain_pick = plain.best_child(plain.root).move
        tuned_pick = tuned.best_child(tuned.root).move
        # Both must pick a legal child; the interesting cases disagree,
        # but at minimum the tuned pick's score computation ran.
        assert plain_pick in range(9)
        assert tuned_pick in range(9)
