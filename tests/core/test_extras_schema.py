"""Extras-schema lint: every emitted key is declared, typed, named.

Each engine kind registers its extras schema (``family.metric`` keys)
via :func:`repro.core.register_extra_keys`; this suite runs every kind
on both backends (and under fault injection for the guarded kinds) and
asserts the emission matches the declaration -- no undeclared keys, no
wrongly-typed values, no legacy spellings leaking back in.
"""

import re
import warnings

import pytest

from repro.core import (
    EXTRA_KEYS,
    LEGACY_EXTRA_KEYS,
    extras_schema,
    make_engine,
)
from repro.core.spec import engine_kinds
from repro.games import make_game
from tests.core.test_differential import SMALL_SPECS

BUDGET_S = 4e-4
SEED = 417

#: ``family.metric``: lowercase dotted pairs only.
KEY_SHAPE = re.compile(r"^[a-z]+(_[a-z]+)*\.[a-z]+(_[a-z]+)*$")


def _result(spec):
    game = make_game("tictactoe")
    return make_engine(spec, game, SEED).search(
        game.initial_state(), BUDGET_S
    )


def test_every_registered_kind_declares_a_schema():
    engines = {k.cls.name for k in engine_kinds()}
    assert engines <= set(EXTRA_KEYS)


def test_all_declared_keys_follow_family_metric_convention():
    for engine, schema in EXTRA_KEYS.items():
        for key in schema:
            assert KEY_SHAPE.match(key), (engine, key)


@pytest.mark.parametrize(
    "spec",
    sorted(SMALL_SPECS.values())
    + sorted(f"{s}@arena" for s in SMALL_SPECS.values()),
)
def test_emitted_extras_match_declared_schema(spec):
    res = _result(spec)
    assert res.engine, spec
    schema = res.extras_schema()
    assert schema == extras_schema(res.engine)
    for key, value in res.extras.items():
        assert key in schema, f"{spec} emitted undeclared key {key!r}"
        assert isinstance(value, schema[key]), (spec, key, type(value))


@pytest.mark.integrity
def test_guarded_engines_emit_declared_integrity_keys():
    from repro.faults import FaultPlan, FaultInjector

    game = make_game("tictactoe")
    injector = FaultInjector(FaultPlan.parse("seed=3"))
    for spec in ("block:2x8", "root:2", "tree:2", "pipeline:2"):
        engine = make_engine(spec, game, SEED, injector=injector)
        res = engine.search(game.initial_state(), BUDGET_S)
        schema = res.extras_schema()
        for key, value in res.extras.items():
            assert key in schema, (spec, key)
            assert isinstance(value, schema[key]), (spec, key)
        assert "integrity.detected" in res.extras
        # The legacy-named view is assembled from the flat keys.
        assert res.integrity["corrupt_detected"] == res.extras[
            "integrity.detected"
        ]


def test_legacy_key_lookup_warns_and_resolves():
    res = _result("block:2x8")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert res.extra("gpu.kernels") == res.extras["gpu.kernels"]
        assert res.extra("missing", 42) == 42
    with pytest.warns(DeprecationWarning, match="gpu.kernels"):
        assert res.extra("kernels") == res.extras["gpu.kernels"]
    with pytest.warns(DeprecationWarning):
        assert res.extra("per_tree_depth") == res.extras["tree.depth"]


def test_legacy_map_targets_are_declared_somewhere():
    declared = {k for schema in EXTRA_KEYS.values() for k in schema}
    assert set(LEGACY_EXTRA_KEYS.values()) <= declared
