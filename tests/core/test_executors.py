"""Tests for the playout executors behind the generator seam."""

import pytest

from repro.core.base import batch_executor, drive_search, scalar_executor, tally
from repro.games import Reversi, TicTacToe
from repro.rng import XorShift64Star

import numpy as np


class TestScalarExecutor:
    def test_one_result_per_state(self):
        game = TicTacToe()
        run = scalar_executor(game, XorShift64Star(1))
        states = [game.initial_state()] * 5
        results = run(states)
        assert len(results) == 5
        for winner, plies in results:
            assert winner in (-1, 0, 1)
            assert 5 <= plies <= 9

    def test_empty(self):
        game = TicTacToe()
        run = scalar_executor(game, XorShift64Star(1))
        assert run([]) == []


class TestBatchExecutor:
    def test_small_batches_use_scalar_fallback(self):
        run = batch_executor("reversi", seed=3)
        game = Reversi()
        results = run([game.initial_state()] * 3)
        assert len(results) == 3
        for winner, plies in results:
            assert winner in (-1, 0, 1)
            assert plies > 0

    def test_large_batches_go_vectorised(self):
        run = batch_executor("reversi", seed=3)
        game = Reversi()
        results = run([game.initial_state()] * 64)
        assert len(results) == 64
        winners = np.array([w for w, _ in results])
        b, w, d = tally(winners)
        assert b + w + d == 64
        # sanity: random Reversi from the start is not one-sided
        assert 10 < b < 54

    def test_deterministic_per_call_sequence(self):
        a = batch_executor("reversi", seed=9)
        b = batch_executor("reversi", seed=9)
        game = Reversi()
        states = [game.initial_state()] * 32
        assert a(states) == b(states)
        assert a(states) == b(states)  # second call also aligned

    def test_seed_changes_results(self):
        game = Reversi()
        states = [game.initial_state()] * 32
        a = batch_executor("reversi", seed=1)(states)
        b = batch_executor("reversi", seed=2)(states)
        assert a != b

    def test_empty(self):
        run = batch_executor("tictactoe", seed=1)
        assert run([]) == []


class TestStatisticalAgreement:
    def test_scalar_and_batch_paths_agree_on_win_rate(self):
        """Both executors sample the same uniform-playout distribution;
        their black-win rates must agree within noise."""
        game = Reversi()
        state = game.initial_state()
        scalar = scalar_executor(game, XorShift64Star(5))
        batch = batch_executor("reversi", seed=5)
        n = 300
        s_wins = sum(
            1 for w, _ in scalar([state] * n) if w == 1
        )
        b_wins = sum(1 for w, _ in batch([state] * n) if w == 1)
        assert abs(s_wins - b_wins) / n < 0.15


class TestDriveSearch:
    def test_raises_on_resultless_generator(self):
        def broken():
            yield []
            return None

        gen = broken()
        with pytest.raises(RuntimeError, match="no result"):
            drive_search(gen, lambda reqs: [])


class TestTally:
    def test_counts(self):
        b, w, d = tally(np.array([1, 1, -1, 0, 0, 0]))
        assert (b, w, d) == (2, 1, 3)
