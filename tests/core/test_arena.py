"""Unit and property tests for the struct-of-arrays tree arena.

Three layers:

* structural invariants after real (tiny) searches -- child spans,
  parent links, visit accounting -- swept directly over the arrays;
* growth transparency: a capacity-starved arena that regrows many
  times must match a comfortably pre-sized one bit for bit;
* ``compact()`` round trips (hypothesis over seeds): compacting
  mid-search and searching on yields exactly the search that never
  compacted.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arena import ArenaInvariantError, TreeArena
from repro.core.backend import make_tree
from repro.core.tree import SearchTree
from repro.games import TicTacToe, make_game
from repro.rng import XorShift64Star

GAME = TicTacToe()


def drive(arena: TreeArena, iterations: int, seed: int) -> None:
    """Run ``iterations`` single-tree MCTS iterations on tree 0 with a
    deterministic playout stream."""
    playout_rng = XorShift64Star(seed ^ 0xDEAD)
    for _ in range(iterations):
        node, _ = arena.select_expand(0)
        if arena.terminal_of(node):
            arena.backprop_winner(node, arena.winner_of(node))
        else:
            winner, _ = GAME.playout(arena.state_of(node), playout_rng)
            arena.backprop_winner(node, winner)


def make_arena(seed: int, capacity: int | None = None) -> TreeArena:
    return TreeArena(
        GAME,
        GAME.initial_state(),
        [XorShift64Star(seed)],
        1.0,
        capacity=capacity,
    )


def sweep_invariants(arena: TreeArena) -> None:
    """Array-level structural invariants every engine relies on."""
    n = arena._allocated
    for node in range(n):
        assert 0.0 <= arena.wins[node] <= arena.visits[node]
        assert arena.vloss[node] == 0.0
        start = int(arena.child_start[node])
        count = int(arena.child_count[node])
        if start < 0:
            assert count == 0
            continue
        # The reserved span fits the allocation and the filled prefix
        # fits the reservation.
        assert 0 <= count <= int(arena.n_legal[node])
        assert start + int(arena.n_legal[node]) <= n
        child_visits = 0.0
        for c in range(start, start + count):
            assert int(arena.parent[c]) == node
            assert int(arena.mover[c]) == int(arena.to_move[node])
            assert int(arena.move[c]) >= 0
            child_visits += float(arena.visits[c])
        assert arena.visits[node] >= child_visits


def test_invariants_after_search():
    arena = make_arena(seed=11)
    drive(arena, 200, seed=11)
    sweep_invariants(arena)
    assert arena.node_count(0) == 201
    assert arena.visits[int(arena.roots[0])] == 200


def test_moves_unique_within_span():
    arena = make_arena(seed=5)
    drive(arena, 150, seed=5)
    for node in range(arena._allocated):
        start = int(arena.child_start[node])
        count = int(arena.child_count[node])
        if start < 0:
            continue
        moves = [int(arena.move[c]) for c in range(start, start + count)]
        assert len(moves) == len(set(moves))


def test_arena_tree_matches_pointer_tree():
    """Identical RNG seed and playout stream => identical root stats on
    the SearchTree and the arena-backed adapter."""
    iterations = 120
    seed = 31

    def run(tree):
        playout_rng = XorShift64Star(99)
        for _ in range(iterations):
            node, _ = tree.select_expand()
            if tree.terminal_of(node):
                tree.backprop_winner(node, tree.winner_of(node))
            else:
                winner, _ = GAME.playout(tree.state_of(node), playout_rng)
                tree.backprop_winner(node, winner)
        return tree.root_stats(), tree.node_count, tree.max_depth

    pointer = run(
        SearchTree(GAME, GAME.initial_state(), XorShift64Star(seed), 1.0)
    )
    arena = run(
        make_tree(
            "arena", GAME, GAME.initial_state(), XorShift64Star(seed), 1.0
        )
    )
    assert arena == pointer


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32),
    iterations=st.integers(min_value=1, max_value=150),
)
def test_growth_is_transparent(seed, iterations):
    """Starting from a tiny capacity (many regrows) must match a
    pre-sized arena exactly."""
    tiny = make_arena(seed, capacity=2)
    big = make_arena(seed, capacity=4096)
    drive(tiny, iterations, seed)
    drive(big, iterations, seed)
    assert tiny.root_stats(0) == big.root_stats(0)
    assert tiny.node_count(0) == big.node_count(0)
    assert tiny.max_depth(0) == big.max_depth(0)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32),
    before=st.integers(min_value=1, max_value=80),
    after=st.integers(min_value=1, max_value=80),
)
def test_compact_round_trip(seed, before, after):
    """compact() mid-search changes node ids but nothing observable:
    searching on gives the bit-identical uncompacted search."""
    plain = make_arena(seed)
    compacted = make_arena(seed)
    drive(plain, before + after, seed)
    drive(compacted, before, seed)
    compacted.compact()
    sweep_invariants(compacted)
    # The playout RNG stream must continue where it left off, so
    # recreate its position by re-running the first ``before`` rounds
    # on a throwaway arena (same seed => same draws consumed).
    playout_rng = XorShift64Star(seed ^ 0xDEAD)
    shadow = make_arena(seed)
    for _ in range(before):
        node, _ = shadow.select_expand(0)
        if shadow.terminal_of(node):
            shadow.backprop_winner(node, shadow.winner_of(node))
        else:
            winner, _ = GAME.playout(shadow.state_of(node), playout_rng)
            shadow.backprop_winner(node, winner)
    for _ in range(after):
        node, _ = compacted.select_expand(0)
        if compacted.terminal_of(node):
            compacted.backprop_winner(node, compacted.winner_of(node))
        else:
            winner, _ = GAME.playout(
                compacted.state_of(node), playout_rng
            )
            compacted.backprop_winner(node, winner)
    assert compacted.root_stats(0) == plain.root_stats(0)
    assert compacted.node_count(0) == plain.node_count(0)
    assert compacted.max_depth(0) == plain.max_depth(0)


def test_compact_trims_capacity():
    arena = make_arena(seed=3, capacity=4096)
    drive(arena, 50, seed=3)
    allocated = arena._allocated
    arena.compact()
    assert arena._allocated == allocated
    assert len(arena.visits) == allocated


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32))
def test_multi_tree_lockstep_matches_per_tree_walks(seed):
    """select_expand_all over B trees == B independent select_expand
    walks, tree by tree, in the same per-tree RNG order."""
    game = make_game("connect4")
    rngs_a = [XorShift64Star(seed + b) for b in range(4)]
    rngs_b = [XorShift64Star(seed + b) for b in range(4)]
    lockstep = TreeArena(game, game.initial_state(), rngs_a, 1.0)
    scalar = TreeArena(game, game.initial_state(), rngs_b, 1.0)
    for _ in range(40):
        leaves, depths = lockstep.select_expand_all()
        for t in range(4):
            node, depth = scalar.select_expand(t)
            assert depth == int(depths[t])
            assert scalar.state_of(node) == lockstep.state_of(
                int(leaves[t])
            )
            winner = 1 if (t + depth) % 2 else -1
            scalar.backprop_winner(node, winner)
            lockstep.backprop_winner(int(leaves[t]), winner)
    for t in range(4):
        assert lockstep.root_stats(t) == scalar.root_stats(t)


class TestValidateAudit:
    """The restore-time structural audit: a healthy arena passes, and
    each class of corruption is caught with a pointed error."""

    def _searched(self, seed=17, iterations=120):
        arena = make_arena(seed=seed)
        drive(arena, iterations, seed=seed)
        return arena

    def test_searched_arena_validates(self):
        self._searched().validate()

    def test_snapshot_restore_validates(self):
        arena = self._searched()
        rebuilt = TreeArena.from_snapshot(GAME, arena.snapshot())
        rebuilt.validate()
        sweep_invariants(rebuilt)

    def test_restored_arena_continues_identically(self):
        arena = self._searched(iterations=60)
        rebuilt = TreeArena.from_snapshot(GAME, arena.snapshot())
        drive(arena, 60, seed=99)
        drive(rebuilt, 60, seed=99)
        assert list(arena.visits[: arena._allocated]) == list(
            rebuilt.visits[: rebuilt._allocated]
        )
        assert list(arena.wins[: arena._allocated]) == list(
            rebuilt.wins[: rebuilt._allocated]
        )

    def test_detects_broken_node_count(self):
        arena = self._searched()
        arena.tree_node_count[0] += 1
        with pytest.raises(ArenaInvariantError, match="BFS reaches"):
            arena.validate()

    def test_detects_rooted_root(self):
        arena = self._searched()
        arena.parent[int(arena.roots[0])] = 0
        with pytest.raises(ArenaInvariantError, match="has a parent"):
            arena.validate()

    def test_detects_untried_bookkeeping_drift(self):
        arena = self._searched()
        node = next(
            n
            for n in range(arena._allocated)
            if arena.untried_count[n] > 0
        )
        arena.untried_count[node] += 1
        with pytest.raises(ArenaInvariantError, match="untried"):
            arena.validate()

    def test_detects_mask_order_disagreement(self):
        arena = self._searched()
        node = next(
            n
            for n in range(arena._allocated)
            if arena.untried_count[n] > 0
        )
        arena.untried_mask[node, :] = 0
        with pytest.raises(ArenaInvariantError, match="bitmask"):
            arena.validate()
