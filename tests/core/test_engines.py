"""Behavioural tests shared across every MCTS engine."""

import pytest

from repro.core import (
    BlockParallelMcts,
    HybridMcts,
    LeafParallelMcts,
    MultiGpuMcts,
    RootParallelMcts,
    SequentialMcts,
    TreeParallelMcts,
)
from repro.games import TicTacToe

TTT = TicTacToe()

ENGINES = [
    pytest.param(SequentialMcts, {}, id="sequential"),
    pytest.param(RootParallelMcts, {"n_trees": 4}, id="root"),
    pytest.param(TreeParallelMcts, {"n_workers": 4}, id="tree"),
    pytest.param(
        LeafParallelMcts, {"blocks": 2, "threads_per_block": 32}, id="leaf"
    ),
    pytest.param(
        BlockParallelMcts, {"blocks": 2, "threads_per_block": 32}, id="block"
    ),
    pytest.param(
        HybridMcts, {"blocks": 2, "threads_per_block": 32}, id="hybrid"
    ),
    pytest.param(
        MultiGpuMcts,
        {"n_gpus": 2, "blocks": 2, "threads_per_block": 32},
        id="multigpu",
    ),
]


def winning_position():
    """X to move; 8 wins immediately (X has 6,7 on the bottom row)."""
    s = TTT.initial_state()
    for m in (6, 0, 7, 1):
        s = TTT.apply(s, m)
    return s


def losing_if_ignored_position():
    """X to move; O threatens 0-1-2, X must block at 2 (X has 4, 6)."""
    s = TTT.initial_state()
    for m in (4, 0, 6, 1):
        s = TTT.apply(s, m)
    return s


@pytest.mark.parametrize("cls,kwargs", ENGINES)
class TestEngineContract:
    def test_finds_immediate_win(self, cls, kwargs):
        engine = cls(TTT, seed=5, **kwargs)
        result = engine.search(winning_position(), budget_s=0.004)
        assert result.move == 8

    def test_blocks_immediate_loss(self, cls, kwargs):
        engine = cls(TTT, seed=5, **kwargs)
        result = engine.search(
            losing_if_ignored_position(), budget_s=0.004
        )
        assert result.move == 2

    def test_deterministic_given_seed(self, cls, kwargs):
        r1 = cls(TTT, seed=9, **kwargs).search(
            TTT.initial_state(), budget_s=0.002
        )
        r2 = cls(TTT, seed=9, **kwargs).search(
            TTT.initial_state(), budget_s=0.002
        )
        assert r1.move == r2.move
        assert r1.simulations == r2.simulations
        assert dict(r1.stats) == dict(r2.stats)

    def test_budget_and_telemetry(self, cls, kwargs):
        engine = cls(TTT, seed=3, **kwargs)
        result = engine.search(TTT.initial_state(), budget_s=0.002)
        assert result.iterations > 0
        assert result.simulations >= result.iterations
        assert result.max_depth >= 1
        assert result.elapsed_s > 0
        assert result.root_visits > 0
        assert 0 <= result.move < 9

    def test_rejects_terminal_state(self, cls, kwargs):
        s = TTT.initial_state()
        for m in (0, 3, 1, 4, 2):
            s = TTT.apply(s, m)
        engine = cls(TTT, seed=3, **kwargs)
        with pytest.raises(ValueError):
            engine.search(s, budget_s=0.01)

    def test_rejects_nonpositive_budget(self, cls, kwargs):
        engine = cls(TTT, seed=3, **kwargs)
        with pytest.raises(ValueError):
            engine.search(TTT.initial_state(), budget_s=0.0)

    def test_max_iterations_cap(self, cls, kwargs):
        engine = cls(TTT, seed=3, max_iterations=5, **kwargs)
        result = engine.search(TTT.initial_state(), budget_s=10.0)
        assert result.iterations <= 5 * max(
            kwargs.get("n_trees", 1),
            kwargs.get("n_workers", 1),
            kwargs.get("n_gpus", 1),
        )


class TestEngineSpecifics:
    def test_sequential_one_sim_per_iteration(self):
        res = SequentialMcts(TTT, seed=1).search(
            TTT.initial_state(), 0.002
        )
        assert res.simulations == res.iterations

    def test_leaf_parallel_sims_scale_with_grid(self):
        res = LeafParallelMcts(
            TTT, seed=1, blocks=2, threads_per_block=32
        ).search(TTT.initial_state(), 0.002)
        assert res.simulations == res.iterations * 64

    def test_block_parallel_builds_one_tree_per_block(self):
        res = BlockParallelMcts(
            TTT, seed=1, blocks=4, threads_per_block=32
        ).search(TTT.initial_state(), 0.002)
        assert res.trees == 4
        assert res.simulations == res.iterations * 128

    def test_root_parallel_rejects_zero_trees(self):
        with pytest.raises(ValueError):
            RootParallelMcts(TTT, seed=1, n_trees=0)

    def test_tree_parallel_rejects_bad_args(self):
        with pytest.raises(ValueError):
            TreeParallelMcts(TTT, seed=1, n_workers=0)
        with pytest.raises(ValueError):
            TreeParallelMcts(TTT, seed=1, n_workers=2, virtual_loss=-1)

    def test_multigpu_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            MultiGpuMcts(
                TTT, seed=1, n_gpus=0, blocks=2, threads_per_block=32
            )

    def test_multigpu_aggregates_ranks(self):
        one = MultiGpuMcts(
            TTT, seed=1, n_gpus=1, blocks=2, threads_per_block=32,
            max_iterations=4,
        ).search(TTT.initial_state(), 0.01)
        four = MultiGpuMcts(
            TTT, seed=1, n_gpus=4, blocks=2, threads_per_block=32,
            max_iterations=4,
        ).search(TTT.initial_state(), 0.01)
        assert four.simulations > one.simulations
        assert four.extras["mpi.ranks"] == 4

    def test_hybrid_overlaps_cpu_work(self):
        res = HybridMcts(
            TTT, seed=1, blocks=2, threads_per_block=32
        ).search(TTT.initial_state(), 0.004)
        assert res.extras["cpu.iterations"] > 0
        # CPU overlap means strictly more simulations than GPU lanes
        assert res.simulations > res.iterations * 64

    def test_hybrid_deepens_trees_vs_block(self):
        block = BlockParallelMcts(
            TTT, seed=7, blocks=2, threads_per_block=32
        ).search(TTT.initial_state(), 0.004)
        hybrid = HybridMcts(
            TTT, seed=7, blocks=2, threads_per_block=32
        ).search(TTT.initial_state(), 0.004)
        assert hybrid.max_depth >= block.max_depth
