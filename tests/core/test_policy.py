"""Tests for final-move selection policies."""

import pytest

from repro.core import MAX_RATIO, MAX_VISITS, MAX_WINS, select_move


class TestMaxVisits:
    def test_picks_most_visited(self):
        stats = {0: (10, 2), 1: (50, 10), 2: (30, 25)}
        assert select_move(stats, MAX_VISITS) == 1

    def test_tie_breaks_on_wins(self):
        stats = {0: (10, 2), 1: (10, 8)}
        assert select_move(stats, MAX_VISITS) == 1

    def test_full_tie_breaks_on_lowest_move(self):
        stats = {4: (10, 5), 2: (10, 5)}
        assert select_move(stats, MAX_VISITS) == 2


class TestMaxRatio:
    def test_picks_best_ratio(self):
        stats = {0: (100, 50), 1: (20, 18)}
        assert select_move(stats, MAX_RATIO) == 1

    def test_min_visits_guard(self):
        stats = {0: (100, 60), 1: (1, 1)}
        assert select_move(stats, MAX_RATIO, min_visits=5) == 0


class TestMaxWins:
    def test_picks_highest_wins(self):
        stats = {0: (100, 30), 1: (50, 40)}
        assert select_move(stats, MAX_WINS) == 1


class TestErrors:
    def test_empty_stats(self):
        with pytest.raises(ValueError, match="no move statistics"):
            select_move({})

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown final-move policy"):
            select_move({0: (1, 1)}, "argmax_of_vibes")
