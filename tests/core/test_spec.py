"""Tests for the declarative engine-spec API (repro.core.spec)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BlockParallelMcts,
    EngineSpec,
    HybridMcts,
    LeafParallelMcts,
    MultiGpuMcts,
    PipelineMcts,
    RootParallelMcts,
    SequentialMcts,
    TreeParallelMcts,
    engine_kinds,
    make_engine,
    spec_modifiers,
    with_backend,
)
from repro.games import TicTacToe

BUDGET = 0.002

#: kind -> (small spec string, equivalent direct construction).
EQUIVALENTS = {
    "sequential": (
        "sequential",
        lambda g, s: SequentialMcts(g, s),
    ),
    "leaf": (
        "leaf:2x32",
        lambda g, s: LeafParallelMcts(g, s, blocks=2, threads_per_block=32),
    ),
    "block": (
        "block:2x32",
        lambda g, s: BlockParallelMcts(g, s, blocks=2, threads_per_block=32),
    ),
    "hybrid": (
        "hybrid:2x32",
        lambda g, s: HybridMcts(g, s, blocks=2, threads_per_block=32),
    ),
    "root": (
        "root:2",
        lambda g, s: RootParallelMcts(g, s, n_trees=2),
    ),
    "tree": (
        "tree:2",
        lambda g, s: TreeParallelMcts(g, s, n_workers=2),
    ),
    "pipeline": (
        "pipeline:2",
        lambda g, s: PipelineMcts(g, s, n_workers=2),
    ),
    "multigpu": (
        "multigpu:2x2x32",
        lambda g, s: MultiGpuMcts(
            g, s, n_gpus=2, blocks=2, threads_per_block=32
        ),
    ),
}


def test_every_registered_kind_has_an_equivalence_case():
    assert {k.name for k in engine_kinds()} == set(EQUIVALENTS)


@pytest.mark.parametrize("kind", sorted(EQUIVALENTS))
def test_spec_build_matches_direct_construction(kind):
    """Same seed + budget => byte-identical SearchResult either way."""
    text, direct = EQUIVALENTS[kind]
    game = TicTacToe()
    seed = 7
    via_spec = make_engine(text, game, seed).search(
        game.initial_state(), BUDGET
    )
    via_class = direct(game, seed).search(game.initial_state(), BUDGET)
    assert via_spec.move == via_class.move
    assert via_spec.simulations == via_class.simulations
    assert via_spec.iterations == via_class.iterations
    assert via_spec.elapsed_s == via_class.elapsed_s
    assert dict(via_spec.stats) == dict(via_class.stats)


@pytest.mark.parametrize("kind", sorted(EQUIVALENTS))
def test_string_round_trip(kind):
    text, _ = EQUIVALENTS[kind]
    spec = EngineSpec.parse(text)
    assert spec.kind == kind
    assert spec.canonical() == text
    assert EngineSpec.parse(spec.canonical()) == spec


def test_to_string_is_deprecated_alias_of_canonical():
    spec = EngineSpec.parse("block:2x8@arena")
    with pytest.warns(DeprecationWarning, match="canonical"):
        assert spec.to_string() == spec.canonical()


def test_dict_form_equivalent_to_string_form():
    game = TicTacToe()
    a = make_engine("block:2x32", game, 3)
    b = make_engine(
        {"kind": "block", "blocks": 2, "threads_per_block": 32}, game, 3
    )
    ra = a.search(game.initial_state(), BUDGET)
    rb = b.search(game.initial_state(), BUDGET)
    assert ra.move == rb.move
    assert ra.simulations == rb.simulations


def test_dict_form_carries_keyword_parameters():
    game = TicTacToe()
    engine = make_engine(
        {"kind": "sequential", "ucb_c": 0.7}, game, 1
    )
    assert engine.ucb_c == 0.7


def test_overrides_win_over_spec_params():
    game = TicTacToe()
    engine = make_engine("root:2", game, 1, n_trees=4)
    assert engine.n_trees == 4


def test_device_resolved_from_string():
    from repro.gpu import get_device_spec

    game = TicTacToe()
    engine = make_engine(
        {"kind": "block", "blocks": 2, "threads_per_block": 32,
         "device": "gtx_580"},
        game,
        1,
    )
    assert engine.gpu.spec == get_device_spec("gtx_580")


def test_coerce_passthrough_and_rejects_junk():
    spec = EngineSpec("sequential")
    assert EngineSpec.coerce(spec) is spec
    with pytest.raises(ValueError, match="int"):
        EngineSpec.coerce(42)
    with pytest.raises(ValueError, match="kind"):
        EngineSpec.coerce({"blocks": 2})


def test_canonical_rejects_keyword_only_params():
    spec = EngineSpec("sequential", {"ucb_c": 0.5})
    with pytest.raises(ValueError, match="ucb_c"):
        spec.canonical()


class TestBackendSuffix:
    """The ``@backend`` suffix of the string grammar."""

    def test_parse_backend_suffix(self):
        spec = EngineSpec.parse("block:2x8@arena")
        assert spec.kind == "block"
        assert spec.params["backend"] == "arena"
        assert spec.params["blocks"] == 2

    def test_parse_backend_on_parameterless_kind(self):
        spec = EngineSpec.parse("sequential@arena")
        assert spec.params == {"backend": "arena"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="@cuda"):
            EngineSpec.parse("block:2x8@cuda")

    def test_round_trip_keeps_backend(self):
        for text in ("block:2x8@arena", "sequential@arena"):
            assert EngineSpec.parse(text).canonical() == text

    def test_node_backend_is_default_and_not_emitted(self):
        spec = EngineSpec.parse("block:2x8@node")
        assert spec.params["backend"] == "node"
        assert spec.canonical() == "block:2x8"

    def test_with_backend_helper(self):
        assert with_backend("root:4", "arena").canonical() == "root:4@arena"
        # The spec's own explicit backend wins over the override.
        assert (
            with_backend("root:4@node", "arena").params["backend"] == "node"
        )
        assert with_backend("root:4", "node").canonical() == "root:4"

    def test_built_engine_carries_backend(self):
        game = TicTacToe()
        engine = make_engine("block:2x8@arena", game, 1)
        assert engine.backend == "arena"
        assert make_engine("block:2x8", game, 1).backend == "node"


class TestMalformedSpecs:
    """Every malformed spec raises ValueError naming the bad token."""

    KNOWN = {k.name for k in engine_kinds()}

    @given(
        kind=st.text(
            alphabet=st.characters(whitelist_categories=("Ll",)),
            min_size=1,
            max_size=12,
        ).filter(lambda s: s not in {k.name for k in engine_kinds()})
    )
    @settings(max_examples=50, deadline=None)
    def test_unknown_kind_named_in_error(self, kind):
        with pytest.raises(ValueError) as err:
            EngineSpec.parse(kind)
        assert repr(kind) in str(err.value)

    @given(
        kind=st.sampled_from(["block", "leaf", "hybrid", "root", "tree"]),
        token=st.text(
            alphabet=st.characters(whitelist_categories=("Ll",)),
            min_size=1,
            max_size=6,
        ).filter(lambda s: "x" not in s and not s.isdigit()),
    )
    @settings(max_examples=50, deadline=None)
    def test_non_integer_token_named_in_error(self, kind, token):
        with pytest.raises(ValueError) as err:
            EngineSpec.parse(f"{kind}:{token}")
        assert repr(token) in str(err.value) or "parameter" in str(
            err.value
        )

    @given(extra=st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_wrong_arity_reports_expectation(self, extra):
        args = "x".join(["8"] * (2 + extra))
        with pytest.raises(ValueError) as err:
            EngineSpec.parse(f"block:{args}")
        msg = str(err.value)
        assert "block" in msg and "2" in msg

    def test_missing_params_names_example(self):
        with pytest.raises(ValueError, match="block:16x32"):
            EngineSpec.parse("block")

    def test_empty_spec(self):
        with pytest.raises(ValueError, match="empty"):
            EngineSpec.parse("   ")


class TestModifierGrammar:
    """The composable ``@modifier`` grammar (order-independent,
    registered table, loud errors)."""

    def test_unknown_modifier_names_token_and_candidates(self):
        with pytest.raises(ValueError) as err:
            EngineSpec.parse("tree:4@warp")
        msg = str(err.value)
        assert "@warp" in msg and "@wuct" in msg

    def test_modifier_on_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="does not apply"):
            EngineSpec.parse("sequential@wuct")
        with pytest.raises(ValueError, match="does not apply"):
            EngineSpec.parse("block:2x8@wuct")

    def test_duplicate_modifier_rejected(self):
        with pytest.raises(ValueError, match="duplicate modifier @wuct"):
            EngineSpec.parse("tree:4@wuct@wuct")

    def test_conflicting_modifiers_rejected(self):
        with pytest.raises(ValueError, match="conflicting modifiers"):
            EngineSpec.parse("tree:4@wuct@vloss")
        with pytest.raises(ValueError, match="conflicting modifiers"):
            EngineSpec.parse("tree:4@node@arena")

    def test_order_independence(self):
        a = EngineSpec.parse("tree:8@wuct@arena")
        b = EngineSpec.parse("tree:8@arena@wuct")
        assert a == b
        assert a.canonical() == b.canonical() == "tree:8@wuct@arena"

    def test_value_modifier_parses_and_round_trips(self):
        spec = EngineSpec.parse("tree:4@vloss=1.5")
        assert spec.params["mode"] == "vloss"
        assert spec.params["virtual_loss"] == 1.5
        assert spec.canonical() == "tree:4@vloss=1.5"
        # Integral values render without a trailing .0.
        assert (
            EngineSpec.parse("tree:4@vloss=2").canonical()
            == "tree:4@vloss=2"
        )

    def test_bare_value_modifier_rejected(self):
        with pytest.raises(ValueError, match="needs a value"):
            EngineSpec.parse("root:4@vote")

    def test_flag_modifier_rejects_value(self):
        with pytest.raises(ValueError, match="takes no value"):
            EngineSpec.parse("tree:4@arena=2")

    def test_wuct_engine_rejects_virtual_loss(self):
        game = TicTacToe()
        with pytest.raises(ValueError, match="virtual_loss"):
            TreeParallelMcts(game, 1, n_workers=2, mode="wuct",
                             virtual_loss=2.0)
        with pytest.raises(ValueError, match="virtual_loss"):
            PipelineMcts(game, 1, n_workers=2, mode="wuct",
                         virtual_loss=2.0)

    def test_vloss_rejects_nonpositive_virtual_loss(self):
        game = TicTacToe()
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="virtual_loss"):
                TreeParallelMcts(game, 1, n_workers=2, virtual_loss=bad)
            with pytest.raises(ValueError, match="virtual_loss"):
                PipelineMcts(game, 1, n_workers=2, virtual_loss=bad)


class TestSpecGrammarLint:
    """Every registered default spec round-trips through canonical()
    -- and so do modifier-decorated variants of every kind."""

    @pytest.mark.parametrize(
        "kind", sorted(k.name for k in engine_kinds())
    )
    def test_registered_example_round_trips(self, kind):
        example = next(
            k.example for k in engine_kinds() if k.name == kind
        )
        spec = EngineSpec.parse(example)
        assert spec.canonical() == example
        assert EngineSpec.parse(spec.canonical()) == spec

    @pytest.mark.parametrize(
        "kind", sorted(k.name for k in engine_kinds())
    )
    def test_every_applicable_modifier_round_trips(self, kind):
        example = next(
            k.example for k in engine_kinds() if k.name == kind
        )
        for mod in spec_modifiers():
            if mod.kinds is not None and kind not in mod.kinds:
                continue
            if mod.flag_params is None:
                if mod.name != "vote":
                    continue
                text = f"{example}@{mod.name}=majority"
            else:
                text = f"{example}@{mod.name}"
            # Canonical form is a fixed point: parsing it and
            # re-canonicalising changes nothing (defaults such as
            # @vloss or @node may be dropped on the first pass).
            canonical = EngineSpec.parse(text).canonical()
            assert EngineSpec.parse(canonical).canonical() == canonical
