"""Hypothesis property tests on search-tree invariants.

These run real (tiny) searches and then sweep the whole tree checking
the accounting identities every engine relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SequentialMcts
from repro.core.base import drive_search, scalar_executor
from repro.cpu.costmodel import FREE_CPU
from repro.games import TicTacToe
from repro.rng import XorShift64Star

GAME = TicTacToe()


def run_search(seed, iterations):
    engine = SequentialMcts(
        GAME, seed=seed, cost_model=FREE_CPU, max_iterations=iterations
    )
    gen = engine.search_steps(GAME.initial_state(), budget_s=1e9)
    # Reach inside: drive the generator but keep the tree by rebuilding
    # through the public engine (stats suffice for the invariants).
    result = drive_search(
        gen, scalar_executor(GAME, XorShift64Star(seed))
    )
    return result


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32),
    st.integers(min_value=1, max_value=120),
)
def test_root_stats_account_for_all_simulations(seed, iterations):
    result = run_search(seed, iterations)
    assert result.simulations == iterations
    # Every simulation passes through exactly one root child.
    assert result.root_visits == result.simulations


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32),
    st.integers(min_value=1, max_value=120),
)
def test_wins_bounded_by_visits(seed, iterations):
    result = run_search(seed, iterations)
    for move, (visits, wins) in result.stats.items():
        assert 0 <= wins <= visits
        assert 0 <= move < GAME.num_moves


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**32))
def test_full_tree_invariants(seed):
    """Walk an actual tree object: visit monotonicity along edges and
    mover alternation."""
    from repro.core.tree import SearchTree

    rng = XorShift64Star(seed)
    playout_rng = XorShift64Star(seed ^ 0xDEAD)
    tree = SearchTree(GAME, GAME.initial_state(), rng, 1.0)
    for _ in range(150):
        node, _ = tree.select_expand()
        if node.terminal:
            tree.backprop_winner(node, node.winner)
        else:
            winner, _ = GAME.playout(node.state, playout_rng)
            tree.backprop_winner(node, winner)

    total_nodes = 0
    for node in tree.iter_nodes():
        total_nodes += 1
        assert 0 <= node.wins <= node.visits
        assert node.vloss == 0.0  # no virtual loss in this engine
        child_visit_sum = sum(c.visits for c in node.children)
        # A node's own visits include every descent through it, so they
        # are at least the sum of its children's.
        assert node.visits >= child_visit_sum
        for child in node.children:
            assert child.parent is node
            assert child.mover == node.to_move
    assert total_nodes == tree.node_count
    assert tree.root.visits == 150
