"""Tests for the SearchResult record."""

from repro.core.results import SearchResult


def make_result(stats):
    return SearchResult(
        move=0,
        stats=stats,
        iterations=10,
        simulations=100,
        max_depth=3,
        tree_nodes=50,
        elapsed_s=0.5,
    )


class TestSearchResult:
    def test_root_visits_sums(self):
        res = make_result({0: (30, 10), 1: (70, 40)})
        assert res.root_visits == 100

    def test_visit_share(self):
        res = make_result({0: (30, 10), 1: (70, 40)})
        assert res.visit_share(1) == 0.7
        assert res.visit_share(0) == 0.3

    def test_visit_share_unknown_move(self):
        res = make_result({0: (30, 10)})
        assert res.visit_share(5) == 0.0

    def test_visit_share_empty_stats(self):
        res = make_result({})
        assert res.visit_share(0) == 0.0

    def test_defaults(self):
        res = make_result({0: (1, 1)})
        assert res.trees == 1
        assert res.extras == {}
