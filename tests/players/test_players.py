"""Tests for the player wrappers."""

import pytest

from repro.core import SequentialMcts
from repro.games import Reversi, TicTacToe
from repro.players import GreedyPlayer, MctsPlayer, RandomPlayer


class TestRandomPlayer:
    def test_moves_are_legal(self):
        game = TicTacToe()
        player = RandomPlayer(game, seed=1)
        s = game.initial_state()
        for _ in range(20):
            info = player.choose(s)
            assert info.move in game.legal_moves(s)

    def test_terminal_raises(self):
        game = TicTacToe()
        s = game.initial_state()
        for m in (0, 3, 1, 4, 2):
            s = game.apply(s, m)
        with pytest.raises(ValueError):
            RandomPlayer(game, seed=1).choose(s)

    def test_deterministic(self):
        game = TicTacToe()
        s = game.initial_state()
        a = [RandomPlayer(game, seed=7).choose(s).move for _ in range(1)]
        b = [RandomPlayer(game, seed=7).choose(s).move for _ in range(1)]
        assert a == b


class TestGreedyPlayer:
    def test_takes_max_flips_in_reversi(self):
        game = Reversi()
        s = game.initial_state()
        # All four openings flip exactly one disc; after any move, the
        # reply flipping most discs is greedy's pick.
        s = game.apply(s, 2 * 8 + 3)
        player = GreedyPlayer(game, seed=1)
        info = player.choose(s)
        mover = game.to_move(s)
        best = max(
            game.legal_moves(s),
            key=lambda m: game.score(game.apply(s, m)) * mover,
        )
        chosen_score = game.score(game.apply(s, info.move)) * mover
        assert chosen_score == game.score(game.apply(s, best)) * mover

    def test_wins_immediately_in_tictactoe(self):
        game = TicTacToe()
        s = game.initial_state()
        for m in (0, 3, 1, 4):
            s = game.apply(s, m)
        # X to move, 2 completes the top row: score jumps to +1.
        info = GreedyPlayer(game, seed=1).choose(s)
        assert info.move == 2


class TestMctsPlayer:
    def test_wraps_engine_telemetry(self):
        game = TicTacToe()
        engine = SequentialMcts(game, seed=1)
        player = MctsPlayer(game, engine, move_budget_s=0.002)
        info = player.choose(game.initial_state())
        assert info.move in range(9)
        assert info.simulations > 0
        assert info.max_depth >= 1
        assert player.name == "sequential"

    def test_rejects_bad_budget(self):
        game = TicTacToe()
        engine = SequentialMcts(game, seed=1)
        with pytest.raises(ValueError):
            MctsPlayer(game, engine, move_budget_s=0.0)

    def test_rejects_mismatched_game(self):
        engine = SequentialMcts(TicTacToe(), seed=1)
        with pytest.raises(ValueError, match="different game"):
            MctsPlayer(Reversi(), engine, move_budget_s=0.01)

    def test_custom_name(self):
        game = TicTacToe()
        engine = SequentialMcts(game, seed=1)
        player = MctsPlayer(game, engine, 0.01, name="cpu-1")
        assert player.name == "cpu-1"
