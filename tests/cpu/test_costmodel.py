"""Tests for the virtual CPU cost model."""

import pytest

from repro.cpu import XEON_X5670, CpuCostModel, cpu_cost_model
from repro.cpu.costmodel import FREE_CPU


class TestRegistry:
    def test_lookup(self):
        assert cpu_cost_model("xeon_x5670") is XEON_X5670
        assert cpu_cost_model("free") is FREE_CPU

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown cpu cost model"):
            cpu_cost_model("epyc")


class TestCosts:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CpuCostModel(name="bad", expand_s=-1.0)

    def test_iteration_decomposition(self):
        m = XEON_X5670
        t = m.iteration_time(depth=10, playout_plies=50)
        assert t == pytest.approx(
            m.fixed_per_iteration_s
            + m.selection_time(10)
            + m.expand_s
            + m.playout_time(50)
            + m.backprop_time(10)
        )

    def test_negative_depth_clamped(self):
        assert XEON_X5670.selection_time(-5) == 0.0
        assert XEON_X5670.backprop_time(-1) == 0.0
        assert XEON_X5670.playout_time(-1) == 0.0

    def test_calibration_envelope(self):
        """One simulated Xeon core sustains ~1e4 Reversi iterations/s
        at mid-game depth (the paper-era rate; DESIGN.md section 5)."""
        t = XEON_X5670.iteration_time(depth=12, playout_plies=50)
        rate = 1.0 / t
        assert 5e3 < rate < 5e4

    def test_tree_control_excludes_playout(self):
        m = XEON_X5670
        assert m.tree_control_time(10) < m.iteration_time(10, 50)
        assert m.tree_control_time(10) == pytest.approx(
            m.selection_time(10)
            + m.expand_s
            + m.backprop_time(10)
            + m.tree_kernel_overhead_s
        )

    def test_free_model_charges_nothing(self):
        assert FREE_CPU.iteration_time(10, 50) == 0.0
        assert FREE_CPU.tree_control_time(10) == 0.0
