"""Tests for the shared device pool (repro.gpu.lease)."""

import pytest

from repro.gpu import TESLA_C2050, DevicePool, PoolError
from repro.gpu.trace import Tracer
from repro.util.clock import Clock


def make_pool(n=2):
    clock = Clock()
    tracer = Tracer()
    pool = DevicePool((TESLA_C2050,) * n, clock, tracer)
    return pool, clock, tracer


class TestPlacement:
    def test_empty_pool_rejected(self):
        with pytest.raises(PoolError, match="at least one"):
            DevicePool((), Clock())

    def test_least_busy_round_robins_under_equal_load(self):
        pool, _, _ = make_pool(3)
        seen = []
        for _ in range(3):
            lease = pool.launch("req", 1e-3)
            seen.append(lease.device_id)
        assert seen == [0, 1, 2]

    def test_explicit_device_id_respected(self):
        pool, _, _ = make_pool(2)
        lease = pool.launch("req", 1e-3, device_id=1)
        assert lease.device_id == 1

    def test_unknown_device_id_rejected(self):
        pool, _, _ = make_pool(2)
        with pytest.raises(PoolError, match="no device 5"):
            pool.launch("req", 1e-3, device_id=5)

    def test_in_order_stream_serialises_same_device(self):
        pool, _, _ = make_pool(1)
        a = pool.launch("a", 1e-3)
        b = pool.launch("b", 1e-3)
        assert b.start_s == pytest.approx(a.end_s)
        assert b.duration_s == pytest.approx(1e-3)


class TestSynchronisation:
    def test_synchronize_advances_clock_to_completion(self):
        pool, clock, _ = make_pool(1)
        lease = pool.launch("req", 2e-3)
        assert clock.now == 0.0
        pool.synchronize(lease)
        assert clock.now == pytest.approx(2e-3)

    def test_complete_tracks_clock(self):
        pool, clock, _ = make_pool(1)
        lease = pool.launch("req", 1e-3)
        assert not pool.complete(lease)
        clock.advance(2e-3)
        assert pool.complete(lease)

    def test_next_completion_is_earliest_pending(self):
        pool, _, _ = make_pool(2)
        pool.launch("a", 3e-3, device_id=0)
        pool.launch("b", 1e-3, device_id=1)
        assert pool.next_completion() == pytest.approx(1e-3)

    def test_next_completion_none_when_idle(self):
        pool, _, _ = make_pool(1)
        assert pool.next_completion() is None


class TestAccounting:
    def test_tracer_spans_per_device_track(self):
        pool, _, tracer = make_pool(2)
        pool.launch("a", 1e-3, device_id=0, label="k0")
        pool.launch("b", 2e-3, device_id=1, label="k1")
        tracks = {e.track for e in tracer.events}
        assert tracks == {"gpu0", "gpu1"}
        holders = {e.args["holder"] for e in tracer.events}
        assert holders == {"a", "b"}

    def test_utilization_busy_over_elapsed(self):
        pool, _, _ = make_pool(2)
        pool.launch("a", 1e-3, device_id=0)
        util = pool.utilization(4e-3)
        assert util["gpu0"] == pytest.approx(0.25)
        assert util["gpu1"] == 0.0

    def test_busy_seconds_and_launch_counts(self):
        pool, _, _ = make_pool(1)
        pool.launch("a", 1e-3)
        pool.launch("a", 2e-3)
        assert pool.busy_seconds(0) == pytest.approx(3e-3)
        assert pool.launches(0) == 2
        assert len(pool.leases) == 2
