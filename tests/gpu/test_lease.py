"""Tests for the shared device pool (repro.gpu.lease)."""

import pytest

from repro.gpu import TESLA_C2050, DevicePool, PoolError
from repro.gpu.trace import Tracer
from repro.util.clock import Clock


def make_pool(n=2):
    clock = Clock()
    tracer = Tracer()
    pool = DevicePool((TESLA_C2050,) * n, clock, tracer)
    return pool, clock, tracer


class TestPlacement:
    def test_empty_pool_rejected(self):
        with pytest.raises(PoolError, match="at least one"):
            DevicePool((), Clock())

    def test_least_busy_round_robins_under_equal_load(self):
        pool, _, _ = make_pool(3)
        seen = []
        for _ in range(3):
            lease = pool.launch("req", 1e-3)
            seen.append(lease.device_id)
        assert seen == [0, 1, 2]

    def test_explicit_device_id_respected(self):
        pool, _, _ = make_pool(2)
        lease = pool.launch("req", 1e-3, device_id=1)
        assert lease.device_id == 1

    def test_unknown_device_id_rejected(self):
        pool, _, _ = make_pool(2)
        with pytest.raises(PoolError, match="no device 5"):
            pool.launch("req", 1e-3, device_id=5)

    def test_in_order_stream_serialises_same_device(self):
        pool, _, _ = make_pool(1)
        a = pool.launch("a", 1e-3)
        b = pool.launch("b", 1e-3)
        assert b.start_s == pytest.approx(a.end_s)
        assert b.duration_s == pytest.approx(1e-3)


class TestSynchronisation:
    def test_synchronize_advances_clock_to_completion(self):
        pool, clock, _ = make_pool(1)
        lease = pool.launch("req", 2e-3)
        assert clock.now == 0.0
        pool.synchronize(lease)
        assert clock.now == pytest.approx(2e-3)

    def test_complete_tracks_clock(self):
        pool, clock, _ = make_pool(1)
        lease = pool.launch("req", 1e-3)
        assert not pool.complete(lease)
        clock.advance(2e-3)
        assert pool.complete(lease)

    def test_next_completion_is_earliest_pending(self):
        pool, _, _ = make_pool(2)
        pool.launch("a", 3e-3, device_id=0)
        pool.launch("b", 1e-3, device_id=1)
        assert pool.next_completion() == pytest.approx(1e-3)

    def test_next_completion_none_when_idle(self):
        pool, _, _ = make_pool(1)
        assert pool.next_completion() is None


class TestAccounting:
    def test_tracer_spans_per_device_track(self):
        pool, _, tracer = make_pool(2)
        pool.launch("a", 1e-3, device_id=0, label="k0")
        pool.launch("b", 2e-3, device_id=1, label="k1")
        tracks = {e.track for e in tracer.events}
        assert tracks == {"gpu0", "gpu1"}
        holders = {e.args["holder"] for e in tracer.events}
        assert holders == {"a", "b"}

    def test_utilization_busy_over_elapsed(self):
        pool, _, _ = make_pool(2)
        pool.launch("a", 1e-3, device_id=0)
        util = pool.utilization(4e-3)
        assert util["gpu0"] == pytest.approx(0.25)
        assert util["gpu1"] == 0.0

    def test_busy_seconds_and_launch_counts(self):
        pool, _, _ = make_pool(1)
        pool.launch("a", 1e-3)
        pool.launch("a", 2e-3)
        assert pool.busy_seconds(0) == pytest.approx(3e-3)
        assert pool.launches(0) == 2
        assert len(pool.leases) == 2


class TestHealth:
    def test_quarantine_after_consecutive_failures(self):
        pool, _, _ = make_pool(2)
        assert not pool.mark_failure(0)
        assert not pool.mark_failure(0)
        assert pool.mark_failure(0)  # third strike quarantines
        assert pool.is_quarantined(0)
        assert pool.healthy_ids() == [1]
        assert pool.health(0)["quarantines"] == 1

    def test_success_clears_the_failure_streak(self):
        pool, _, _ = make_pool(1)
        pool.mark_failure(0)
        pool.mark_failure(0)
        pool.mark_success(0)
        assert not pool.mark_failure(0)
        assert not pool.is_quarantined(0)

    def test_quarantine_expires_with_the_clock(self):
        pool, clock, _ = make_pool(1)
        for _ in range(3):
            pool.mark_failure(0)
        assert pool.is_quarantined(0)
        clock.advance(pool.quarantine_s)
        assert not pool.is_quarantined(0)
        assert pool.healthy_ids() == [0]

    def test_least_busy_skips_quarantined_devices(self):
        pool, _, _ = make_pool(2)
        for _ in range(3):
            pool.mark_failure(0)
        assert pool.least_busy() == 1

    def test_placement_falls_back_when_all_quarantined(self):
        pool, _, _ = make_pool(2)
        for device in (0, 1):
            for _ in range(3):
                pool.mark_failure(device)
        # No healthy device left: don't deadlock, use the full pool.
        assert pool.least_busy() == 0

    def test_explicit_candidates_used_verbatim(self):
        pool, _, _ = make_pool(2)
        for _ in range(3):
            pool.mark_failure(1)
        assert pool.least_busy([1]) == 1
        with pytest.raises(PoolError, match="no candidate"):
            pool.least_busy([])


class TestLeaseResolution:
    """Regression tests for the lease-leak bug: every launch must be
    synchronized, completed or abandoned by service drain."""

    def test_unresolved_lease_fails_drain(self):
        pool, _, _ = make_pool(1)
        pool.launch("leaker", 1e-3)
        with pytest.raises(PoolError, match="leaker"):
            pool.assert_drained()

    def test_synchronize_resolves(self):
        pool, _, _ = make_pool(1)
        lease = pool.launch("req", 1e-3)
        assert pool.unresolved_leases == (lease,)
        pool.synchronize(lease)
        pool.assert_drained()

    def test_complete_resolves_only_when_done(self):
        pool, clock, _ = make_pool(1)
        lease = pool.launch("req", 1e-3)
        assert not pool.complete(lease)
        assert pool.unresolved_leases == (lease,)
        clock.advance(2e-3)
        assert pool.complete(lease)
        pool.assert_drained()

    def test_abandon_resolves_without_waiting(self):
        pool, clock, _ = make_pool(1)
        lease = pool.launch("req", 1e-3)
        pool.abandon(lease)
        pool.assert_drained()
        # Abandoning never blocks the host clock.
        assert clock.now == 0.0

    def test_drain_reports_every_leaking_holder(self):
        pool, _, _ = make_pool(2)
        pool.launch("r1", 1e-3, device_id=0)
        pool.launch("r2", 1e-3, device_id=1)
        with pytest.raises(PoolError, match="r1, r2"):
            pool.assert_drained()


class TestNotBefore:
    def test_launch_delayed_to_not_before(self):
        pool, _, _ = make_pool(1)
        lease = pool.launch("req", 1e-3, not_before_s=5e-3)
        assert lease.start_s == pytest.approx(5e-3)
        assert lease.end_s == pytest.approx(6e-3)

    def test_busy_stream_dominates_not_before(self):
        pool, _, _ = make_pool(1)
        pool.launch("a", 4e-3)
        lease = pool.launch("b", 1e-3, not_before_s=1e-3)
        assert lease.start_s == pytest.approx(4e-3)
