"""Tests for the occupancy calculator."""

import pytest

from repro.gpu import (
    TESLA_C2050,
    TOY_DEVICE,
    KernelSpec,
    LaunchConfig,
    concurrent_blocks,
    num_waves,
    occupancy,
)

LIGHT = KernelSpec(
    name="light",
    cycles_per_step=100,
    latency_cycles_per_step=100,
    registers_per_thread=0,
)


class TestLimits:
    def test_block_slot_limit(self):
        # Tiny blocks: the 8-blocks/SM cap binds first.
        occ = occupancy(TESLA_C2050, LIGHT, LaunchConfig(100, 32))
        assert occ.blocks_per_sm == 8
        assert occ.limiter == "blocks"

    def test_thread_limit(self):
        # 1024-thread blocks: 1536 // 1024 = 1 block per SM.
        occ = occupancy(TESLA_C2050, LIGHT, LaunchConfig(100, 1024))
        assert occ.blocks_per_sm == 1
        assert occ.limiter == "threads"

    def test_register_limit(self):
        heavy = KernelSpec(
            name="heavy",
            cycles_per_step=100,
            latency_cycles_per_step=100,
            registers_per_thread=63,
        )
        occ = occupancy(TESLA_C2050, heavy, LaunchConfig(10, 256))
        # 63 regs x 256 threads = 16128; 32768 // 16128 = 2 blocks.
        assert occ.limiter == "registers"
        assert occ.blocks_per_sm == 2

    def test_shared_mem_limit(self):
        smem = KernelSpec(
            name="smem",
            cycles_per_step=100,
            latency_cycles_per_step=100,
            registers_per_thread=0,
            shared_mem_per_block=20000,
        )
        occ = occupancy(TESLA_C2050, smem, LaunchConfig(10, 32))
        assert occ.limiter == "shared_mem"
        assert occ.blocks_per_sm == 2

    def test_impossible_kernel_raises(self):
        impossible = KernelSpec(
            name="imp",
            cycles_per_step=100,
            latency_cycles_per_step=100,
            shared_mem_per_block=10**6,
        )
        with pytest.raises(ValueError, match="cannot fit"):
            occupancy(TESLA_C2050, impossible, LaunchConfig(1, 32))

    def test_occupancy_fraction_bounds(self):
        occ = occupancy(TESLA_C2050, LIGHT, LaunchConfig(8, 192))
        assert 0 < occ.warp_occupancy <= 1


class TestWaves:
    def test_small_grid_one_wave(self):
        assert num_waves(TESLA_C2050, LIGHT, LaunchConfig(14, 64)) == 1

    def test_concurrent_blocks_scales_with_sms(self):
        cap = concurrent_blocks(TESLA_C2050, LIGHT, LaunchConfig(1, 32))
        assert cap == 8 * 14

    def test_oversubscribed_grid(self):
        cap = concurrent_blocks(TESLA_C2050, LIGHT, LaunchConfig(1, 32))
        assert num_waves(TESLA_C2050, LIGHT, LaunchConfig(cap * 3, 32)) == 3
        assert (
            num_waves(TESLA_C2050, LIGHT, LaunchConfig(cap * 3 + 1, 32)) == 4
        )

    def test_toy_device(self):
        # toy: 2 SMs x 2 blocks -> 4 concurrent blocks
        assert concurrent_blocks(TOY_DEVICE, LIGHT, LaunchConfig(1, 32)) == 4
        assert num_waves(TOY_DEVICE, LIGHT, LaunchConfig(9, 32)) == 3
