"""Tests for execution tracing."""

import io
import json

import pytest

from repro.gpu.trace import Tracer, trace_hybrid_search


class TestTracer:
    def test_record_and_list(self):
        tr = Tracer()
        tr.record("k0", "gpu", 0.0, 1.0, lanes=64)
        tr.record("k1", "gpu", 1.5, 2.0)
        assert len(tr.events) == 2
        assert tr.events[0].duration_s == 1.0
        assert tr.events[0].args == {"lanes": 64}

    def test_rejects_negative_span(self):
        with pytest.raises(ValueError):
            Tracer().record("bad", "gpu", 2.0, 1.0)

    def test_track_busy_time_merges_overlaps(self):
        tr = Tracer()
        tr.record("a", "gpu", 0.0, 2.0)
        tr.record("b", "gpu", 1.0, 3.0)  # overlaps a
        tr.record("c", "gpu", 5.0, 6.0)
        assert tr.track_busy_time("gpu") == pytest.approx(4.0)

    def test_busy_time_empty_track(self):
        assert Tracer().track_busy_time("gpu") == 0.0

    def test_overlap_time(self):
        tr = Tracer()
        tr.record("k", "gpu", 0.0, 4.0)
        tr.record("iter", "cpu", 1.0, 2.0)
        tr.record("iter", "cpu", 3.0, 6.0)
        assert tr.overlap_time("gpu", "cpu") == pytest.approx(2.0)

    def test_chrome_export_shape(self):
        tr = Tracer()
        tr.record("k", "gpu", 0.0, 0.001)
        tr.record("i", "cpu", 0.0, 0.0005)
        events = tr.to_chrome_trace()
        spans = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(spans) == 2
        assert len(metas) == 2
        assert spans[0]["dur"] == pytest.approx(1000.0)  # us

    def test_dump_is_valid_json(self):
        tr = Tracer()
        tr.record("k", "gpu", 0.0, 1.0)
        buf = io.StringIO()
        tr.dump(buf)
        data = json.loads(buf.getvalue())
        assert "traceEvents" in data


class TestTraceHybridSearch:
    def test_captures_kernels_and_restores_stream(self):
        from repro.core import HybridMcts
        from repro.games import TicTacToe

        game = TicTacToe()
        engine = HybridMcts(
            game, seed=1, blocks=2, threads_per_block=32
        )
        tracer = trace_hybrid_search(
            engine, game.initial_state(), budget_s=0.003
        )
        # The instrumentation must not leave a shadowing attribute.
        assert "launch" not in engine.gpu.stream.__dict__
        gpu_events = [e for e in tracer.events if e.track == "gpu"]
        assert len(gpu_events) >= 1
        assert tracer.track_busy_time("gpu") > 0
        # The whole search appears on the CPU track.
        assert tracer.track_busy_time("cpu") >= tracer.track_busy_time(
            "gpu"
        ) - 1e-9
