"""Tests for the greedy block scheduler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu import greedy_makespan, wave_assignment


class TestGreedyMakespan:
    def test_empty(self):
        assert greedy_makespan([], 4) == 0.0

    def test_fits_in_slots(self):
        assert greedy_makespan([3.0, 1.0, 2.0], 4) == 3.0

    def test_serialises_on_one_slot(self):
        assert greedy_makespan([3.0, 1.0, 2.0], 1) == 6.0

    def test_two_slots(self):
        # slot A: 3; slot B: 1 then 2 -> makespan 3
        assert greedy_makespan([3.0, 1.0, 2.0], 2) == 3.0

    def test_reuses_freed_slot(self):
        # slots: [5] and [1,1,1,1,1] -> 5
        assert greedy_makespan([5.0, 1.0, 1.0, 1.0, 1.0, 1.0], 2) == 5.0

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            greedy_makespan([1.0], 0)

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            greedy_makespan([-1.0], 2)


@given(
    st.lists(st.floats(min_value=0, max_value=100), max_size=40),
    st.integers(min_value=1, max_value=16),
)
def test_makespan_bounds(times, slots):
    """Greedy is within the classic [max(LB), sum] envelope."""
    ms = greedy_makespan(times, slots)
    total = sum(times)
    lower = max(max(times, default=0.0), total / slots)
    assert lower - 1e-9 <= ms <= total + 1e-9


@given(st.lists(st.floats(min_value=0, max_value=100), max_size=40))
def test_more_slots_never_slower(times):
    assert greedy_makespan(times, 4) <= greedy_makespan(times, 2) + 1e-9


class TestWaveAssignment:
    def test_exact_division(self):
        waves = wave_assignment(8, 4)
        assert [list(w) for w in waves] == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_remainder_wave(self):
        waves = wave_assignment(5, 4)
        assert [list(w) for w in waves] == [[0, 1, 2, 3], [4]]

    def test_zero_blocks(self):
        assert wave_assignment(0, 4) == []

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            wave_assignment(4, 0)
        with pytest.raises(ValueError):
            wave_assignment(-1, 2)
