"""Tests for virtual device specs."""

import pytest

from repro.gpu import TESLA_C2050, TOY_DEVICE, DeviceSpec, get_device_spec


class TestRegistry:
    def test_lookup(self):
        assert get_device_spec("tesla_c2050") is TESLA_C2050

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown device"):
            get_device_spec("h100")


class TestC2050:
    """The paper's hardware: Fermi GF100."""

    def test_shape(self):
        assert TESLA_C2050.sm_count == 14
        assert TESLA_C2050.warp_size == 32
        assert TESLA_C2050.max_threads_per_sm == 1536

    def test_max_resident_threads(self):
        # 14 SMs x 1536 threads = 21504; the paper's largest launch
        # (14336 threads) fits resident in one wave.
        assert TESLA_C2050.max_resident_threads == 21504
        assert 14336 <= TESLA_C2050.max_resident_threads


class TestValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", sm_count=0)

    def test_rejects_zero_clock(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", sm_count=1, clock_hz=0)

    def test_rejects_inconsistent_thread_limits(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad",
                sm_count=1,
                max_threads_per_block=2048,
                max_threads_per_sm=1024,
            )

    def test_with_overrides(self):
        fast = TESLA_C2050.with_overrides(clock_hz=2e9)
        assert fast.clock_hz == 2e9
        assert fast.sm_count == TESLA_C2050.sm_count
        assert TESLA_C2050.clock_hz == 1.15e9  # original untouched


def test_toy_device_is_small():
    assert TOY_DEVICE.max_resident_threads <= 512
