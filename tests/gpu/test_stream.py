"""Tests for asynchronous streams against the virtual clock."""

import pytest

from repro.gpu import Stream, StreamError
from repro.util.clock import Clock


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def stream(clock):
    return Stream(clock)


class TestLaunch:
    def test_launch_does_not_block_host(self, clock, stream):
        stream.launch(1.0)
        assert clock.now == 0.0  # host time unchanged

    def test_event_completion_time(self, clock, stream):
        ev = stream.launch(2.5)
        assert ev.done_at == 2.5

    def test_in_order_queueing(self, clock, stream):
        stream.launch(1.0)
        ev2 = stream.launch(1.0)
        assert ev2.done_at == 2.0  # waits for the first kernel

    def test_launch_after_idle_gap(self, clock, stream):
        stream.launch(1.0)
        clock.advance(5.0)
        ev = stream.launch(1.0)
        assert ev.done_at == 6.0  # starts now, not back-to-back

    def test_negative_duration_rejected(self, stream):
        with pytest.raises(StreamError):
            stream.launch(-1.0)


class TestQuerySync:
    def test_query_before_and_after(self, clock, stream):
        ev = stream.launch(1.0)
        assert not stream.query(ev)
        clock.advance(0.5)
        assert not stream.query(ev)
        clock.advance(0.6)
        assert stream.query(ev)

    def test_synchronize_advances_clock(self, clock, stream):
        ev = stream.launch(3.0, payload="result")
        assert stream.synchronize(ev) == "result"
        assert clock.now == 3.0

    def test_synchronize_after_completion_is_noop(self, clock, stream):
        ev = stream.launch(1.0)
        clock.advance(10.0)
        stream.synchronize(ev)
        assert clock.now == 10.0

    def test_synchronize_all(self, clock, stream):
        stream.launch(1.0)
        stream.launch(2.0)
        stream.synchronize_all()
        assert clock.now == 3.0

    def test_busy_and_pending(self, clock, stream):
        assert not stream.busy
        stream.launch(1.0)
        stream.launch(1.0)
        assert stream.busy
        assert stream.pending == 2
        clock.advance(1.5)
        assert stream.pending == 1
        clock.advance(1.0)
        assert not stream.busy
        assert stream.pending == 0


class TestHybridPattern:
    """The paper's Figure 4 control flow: CPU works while GPU runs."""

    def test_cpu_work_overlaps_kernel(self, clock, stream):
        ev = stream.launch(1.0, payload=42)
        cpu_iterations = 0
        while not stream.query(ev):
            clock.advance(0.125)  # one CPU-side MCTS iteration
            cpu_iterations += 1
        assert cpu_iterations == 8  # exactly (0.125 is float-exact)
        assert stream.synchronize(ev) == 42
        # Total elapsed = kernel time, not kernel + CPU time.
        assert clock.now == pytest.approx(1.0)
