"""Tests for the kernel timing model -- the regimes of Figure 5."""

import numpy as np
import pytest

from repro.gpu import (
    TESLA_C2050,
    LaunchConfig,
    kernel_time,
    peak_playout_rate,
    playout_kernel_spec,
    sm_step_time,
)

KERNEL = playout_kernel_spec("reversi")


class TestSmStepTime:
    def test_latency_bound_floor(self):
        # 1 warp cannot beat the latency floor.
        t1 = sm_step_time(TESLA_C2050, KERNEL, 1)
        t2 = sm_step_time(TESLA_C2050, KERNEL, 2)
        assert t1 == t2  # both below the latency-hiding knee

    def test_issue_bound_growth(self):
        t8 = sm_step_time(TESLA_C2050, KERNEL, 8)
        t16 = sm_step_time(TESLA_C2050, KERNEL, 16)
        assert t16 == pytest.approx(2 * t8)

    def test_rejects_zero_warps(self):
        with pytest.raises(ValueError):
            sm_step_time(TESLA_C2050, KERNEL, 0)


class TestKernelTime:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            kernel_time(
                TESLA_C2050, KERNEL, LaunchConfig(4, 32), np.ones(3)
            )

    def test_components_positive(self):
        t = kernel_time(
            TESLA_C2050,
            KERNEL,
            LaunchConfig(4, 32),
            np.full(4, 60.0),
            transfer_bytes=1024,
        )
        assert t.launch_s > 0
        assert t.compute_s > 0
        assert t.transfer_s > 0
        assert t.total_s == t.launch_s + t.compute_s + t.transfer_s

    def test_no_transfer(self):
        t = kernel_time(
            TESLA_C2050, KERNEL, LaunchConfig(1, 32), np.array([60.0])
        )
        assert t.transfer_s == 0.0

    def test_longer_playouts_cost_more(self):
        cfg = LaunchConfig(14, 64)
        short = kernel_time(TESLA_C2050, KERNEL, cfg, np.full(14, 30.0))
        long = kernel_time(TESLA_C2050, KERNEL, cfg, np.full(14, 90.0))
        assert long.compute_s > short.compute_s


class TestThroughputRegimes:
    """The three regimes that shape the paper's Figure 5."""

    def test_rate_rises_with_threads_before_saturation(self):
        rates = [
            peak_playout_rate(
                TESLA_C2050, KERNEL, LaunchConfig(blocks, 64), 65.0
            )
            for blocks in (1, 4, 16, 64)
        ]
        assert rates == sorted(rates)
        assert rates[-1] > 10 * rates[0]

    def test_rate_saturates_past_device_capacity(self):
        # Past full residency extra blocks serialise into waves:
        # throughput stops improving (within a small tolerance).
        r1 = peak_playout_rate(
            TESLA_C2050, KERNEL, LaunchConfig(224, 64), 65.0
        )
        r2 = peak_playout_rate(
            TESLA_C2050, KERNEL, LaunchConfig(448, 64), 65.0
        )
        assert r2 < r1 * 1.25

    def test_calibrated_peak_envelope(self):
        """The paper's Fig. 5 peaks at roughly 8.5e5 playouts/s for
        leaf parallelism at 14336 threads; the calibrated model must
        land in the same decade and ballpark (0.3x..3x)."""
        rate = peak_playout_rate(
            TESLA_C2050, KERNEL, LaunchConfig(224, 64), 65.0
        )
        assert 2.5e5 < rate < 2.5e6

    def test_single_thread_is_terrible(self):
        """A 1-thread launch must be far slower than a CPU core
        (~1e4 playouts/s): SIMT latency without parallelism."""
        rate = peak_playout_rate(
            TESLA_C2050, KERNEL, LaunchConfig(1, 1), 65.0
        )
        assert rate < 1e3
