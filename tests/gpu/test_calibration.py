"""Tests for kernel calibration fitting."""

import pytest

from repro.gpu import TESLA_C2050, LaunchConfig, playout_kernel_spec
from repro.gpu.calibration import (
    CalibrationError,
    calibrated_kernel,
    fit_cycles_per_step,
)
from repro.gpu.timing import peak_playout_rate

KERNEL = playout_kernel_spec("reversi")
CONFIG = LaunchConfig(224, 64)  # the paper's largest leaf launch


class TestFit:
    def test_round_trip(self):
        """Fitting to the kernel's own rate recovers its cycles."""
        rate = peak_playout_rate(TESLA_C2050, KERNEL, CONFIG, 65.0)
        cycles = fit_cycles_per_step(
            TESLA_C2050, KERNEL, CONFIG, rate, 65.0
        )
        assert cycles == pytest.approx(KERNEL.cycles_per_step, rel=1e-3)

    def test_calibrated_kernel_hits_target(self):
        target = 5.0e5
        fitted = calibrated_kernel(
            TESLA_C2050, KERNEL, CONFIG, target, 65.0
        )
        achieved = peak_playout_rate(TESLA_C2050, fitted, CONFIG, 65.0)
        assert achieved == pytest.approx(target, rel=1e-3)

    def test_preserves_latency_ratio(self):
        fitted = calibrated_kernel(
            TESLA_C2050, KERNEL, CONFIG, 4.0e5, 65.0
        )
        assert (
            fitted.latency_cycles_per_step / fitted.cycles_per_step
        ) == pytest.approx(
            KERNEL.latency_cycles_per_step / KERNEL.cycles_per_step
        )

    def test_paper_envelope_is_reachable(self):
        """The paper's ~8.5e5 playouts/s peak must be in range for the
        default calibration bounds (it is the calibration anchor)."""
        cycles = fit_cycles_per_step(
            TESLA_C2050, KERNEL, CONFIG, 8.5e5, 65.0
        )
        assert 100 < cycles < 1e6


class TestErrors:
    def test_unreachable_target(self):
        with pytest.raises(CalibrationError, match="unreachable"):
            fit_cycles_per_step(
                TESLA_C2050, KERNEL, CONFIG, 1e12, 65.0
            )

    def test_nonpositive_target(self):
        with pytest.raises(CalibrationError):
            fit_cycles_per_step(TESLA_C2050, KERNEL, CONFIG, 0.0)

    def test_bad_latency_ratio(self):
        with pytest.raises(CalibrationError, match="ratio"):
            fit_cycles_per_step(
                TESLA_C2050, KERNEL, CONFIG, 1e5, latency_ratio=0.5
            )
