"""Tests for device memory accounting and the transfer model."""

import pytest

from repro.gpu import TESLA_C2050, DeviceMemory, DeviceMemoryError, transfer_time


@pytest.fixture
def mem():
    return DeviceMemory(TESLA_C2050)


class TestAllocation:
    def test_alloc_and_free(self, mem):
        a = mem.alloc(1024, "results")
        assert mem.bytes_in_use == 1024
        mem.free(a)
        assert mem.bytes_in_use == 0

    def test_rejects_nonpositive(self, mem):
        with pytest.raises(DeviceMemoryError):
            mem.alloc(0)

    def test_out_of_memory(self, mem):
        with pytest.raises(DeviceMemoryError, match="out of device memory"):
            mem.alloc(TESLA_C2050.global_mem_bytes + 1)

    def test_oom_after_partial_fill(self, mem):
        mem.alloc(TESLA_C2050.global_mem_bytes - 100)
        with pytest.raises(DeviceMemoryError):
            mem.alloc(200)

    def test_double_free(self, mem):
        a = mem.alloc(16)
        mem.free(a)
        with pytest.raises(DeviceMemoryError, match="double free"):
            mem.free(a)

    def test_live_allocations(self, mem):
        a = mem.alloc(16, "a")
        b = mem.alloc(32, "b")
        labels = {x.label for x in mem.live_allocations()}
        assert labels == {"a", "b"}
        mem.free(a)
        assert [x.label for x in mem.live_allocations()] == ["b"]

    def test_bytes_free(self, mem):
        mem.alloc(1000)
        assert mem.bytes_free == TESLA_C2050.global_mem_bytes - 1000


class TestTransferTime:
    def test_zero_bytes_free_transfer(self):
        assert transfer_time(TESLA_C2050, 0) == 0.0

    def test_latency_floor(self):
        assert transfer_time(TESLA_C2050, 1) >= TESLA_C2050.transfer_latency_s

    def test_bandwidth_term(self):
        one_gb = transfer_time(TESLA_C2050, 10**9)
        assert one_gb == pytest.approx(
            TESLA_C2050.transfer_latency_s + 10**9 / 5e9
        )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            transfer_time(TESLA_C2050, -1)
