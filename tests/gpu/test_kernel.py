"""Tests for kernel specs and launch configurations."""

import pytest

from repro.gpu import TESLA_C2050, KernelSpec, LaunchConfig, playout_kernel_spec


class TestLaunchConfig:
    def test_total_threads(self):
        assert LaunchConfig(16, 64).total_threads == 1024

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            LaunchConfig(0, 64)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            LaunchConfig(1, 0)

    def test_warps_round_up(self):
        cfg = LaunchConfig(3, 40)
        assert cfg.warps_per_block(TESLA_C2050) == 2
        assert cfg.total_warps(TESLA_C2050) == 6

    def test_exact_warp_multiple(self):
        assert LaunchConfig(2, 128).warps_per_block(TESLA_C2050) == 4

    def test_validate_block_size(self):
        LaunchConfig(1, 1024).validate(TESLA_C2050)
        with pytest.raises(ValueError, match="exceeds"):
            LaunchConfig(1, 2048).validate(TESLA_C2050)


class TestKernelSpec:
    def test_registry(self):
        for name in ("reversi", "tictactoe", "connect4"):
            spec = playout_kernel_spec(name)
            assert spec.cycles_per_step > 0

    def test_unknown_game(self):
        with pytest.raises(ValueError, match="no playout kernel"):
            playout_kernel_spec("go")

    def test_rejects_bad_costs(self):
        with pytest.raises(ValueError):
            KernelSpec(name="k", cycles_per_step=0)
        with pytest.raises(ValueError):
            KernelSpec(
                name="k", cycles_per_step=100, latency_cycles_per_step=50
            )
        with pytest.raises(ValueError):
            KernelSpec(name="k", divergence_overhead=0.5)
