"""Tests for warp-divergence telemetry."""

import numpy as np
import pytest

from repro.games import Reversi
from repro.gpu import LaunchConfig, VirtualGpu, TESLA_C2050
from repro.gpu.divergence import analyze_divergence
from repro.util.clock import Clock


class TestAnalyze:
    def test_uniform_lanes_are_fully_efficient(self):
        cfg = LaunchConfig(2, 64)
        steps = np.full(128, 60)
        rep = analyze_divergence(steps, cfg)
        assert rep.mean_efficiency == 1.0
        assert rep.wasted_lane_steps == 0
        assert rep.utilisation == 1.0

    def test_single_straggler_wastes_lanes(self):
        cfg = LaunchConfig(1, 32)
        steps = np.full(32, 10)
        steps[0] = 100
        rep = analyze_divergence(steps, cfg)
        assert rep.mean_efficiency < 0.2
        assert rep.wasted_lane_steps == 31 * 90
        assert rep.useful_lane_steps == 31 * 10 + 100

    def test_warp_grouping(self):
        # Two warps in one block: one uniform, one divergent.
        cfg = LaunchConfig(1, 64)
        steps = np.concatenate([np.full(32, 50), np.full(32, 50)])
        steps[32] = 100
        rep = analyze_divergence(steps, cfg)
        assert rep.warp_efficiency.shape == (2,)
        assert rep.warp_efficiency[0] == 1.0
        assert rep.warp_efficiency[1] < 1.0

    def test_zero_step_warp(self):
        cfg = LaunchConfig(1, 32)
        rep = analyze_divergence(np.zeros(32), cfg)
        assert rep.mean_efficiency == 1.0
        assert rep.utilisation == 1.0

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            analyze_divergence(np.zeros(10), LaunchConfig(1, 32))

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            analyze_divergence(
                np.full(32, -1), LaunchConfig(1, 32)
            )


class TestOnRealKernels:
    def test_reversi_playouts_have_bounded_divergence(self):
        """Random Reversi games differ in length by passes only, so
        warp efficiency should be high (well above 0.5) from the
        opening position."""
        game = Reversi()
        gpu = VirtualGpu(TESLA_C2050, Clock(), "reversi", seed=3)
        cfg = LaunchConfig(4, 64)
        # Re-run the kernel manually to get per-lane finish steps.
        from repro.games.batch import run_playouts_tracked
        from repro.rng import BatchXorShift128Plus

        batch = gpu.batch_game.make_batch(
            [game.initial_state()], cfg.total_threads
        )
        tracked = run_playouts_tracked(
            gpu.batch_game, batch, BatchXorShift128Plus(256, 3)
        )
        rep = analyze_divergence(tracked.finish_steps, cfg)
        assert 0.5 < rep.mean_efficiency <= 1.0
        assert 0.5 < rep.utilisation <= 1.0
