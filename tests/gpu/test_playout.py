"""Tests for the virtual GPU playout runtime."""

import numpy as np
import pytest

from repro.games import Reversi
from repro.gpu import TESLA_C2050, TOY_DEVICE, LaunchConfig, VirtualGpu
from repro.util.clock import Clock


@pytest.fixture
def game():
    return Reversi()


def make_gpu(clock, game_name="reversi", spec=TESLA_C2050, seed=7):
    return VirtualGpu(spec, clock, game_name, seed=seed)


class TestRunPlayouts:
    def test_leaf_parallel_shape(self, game):
        clock = Clock()
        gpu = make_gpu(clock)
        cfg = LaunchConfig(4, 32)
        res = gpu.run_playouts([game.initial_state()], cfg)
        assert res.playouts == 128
        assert res.winners.shape == (128,)
        assert res.block_steps.shape == (4,)
        assert set(np.unique(res.winners)).issubset({-1, 0, 1})

    def test_clock_advances_by_kernel_time(self, game):
        clock = Clock()
        gpu = make_gpu(clock)
        res = gpu.run_playouts([game.initial_state()], LaunchConfig(2, 32))
        assert clock.now == pytest.approx(res.timing.total_s)

    def test_block_parallel_one_state_per_block(self, game):
        clock = Clock()
        gpu = make_gpu(clock)
        s0 = game.initial_state()
        s1 = game.apply(s0, 2 * 8 + 3)
        res = gpu.run_playouts([s0, s1], LaunchConfig(2, 32))
        assert res.playouts == 64

    def test_wrong_state_count_raises(self, game):
        gpu = make_gpu(Clock())
        with pytest.raises(ValueError, match="root states"):
            gpu.run_playouts(
                [game.initial_state()] * 3, LaunchConfig(2, 32)
            )

    def test_block_steps_bounded(self, game):
        gpu = make_gpu(Clock())
        res = gpu.run_playouts([game.initial_state()], LaunchConfig(2, 32))
        assert np.all(res.block_steps > 0)
        assert np.all(res.block_steps <= gpu.batch_game.max_game_length)

    def test_stats_accumulate(self, game):
        gpu = make_gpu(Clock())
        cfg = LaunchConfig(1, 32)
        gpu.run_playouts([game.initial_state()], cfg)
        gpu.run_playouts([game.initial_state()], cfg)
        assert gpu.stats.kernels_launched == 2
        assert gpu.stats.playouts_completed == 64
        assert gpu.stats.busy_seconds > 0

    def test_deterministic_with_same_seed(self, game):
        out = []
        for _ in range(2):
            gpu = make_gpu(Clock(), seed=42)
            res = gpu.run_playouts(
                [game.initial_state()], LaunchConfig(2, 32)
            )
            out.append(res.winners.copy())
        np.testing.assert_array_equal(out[0], out[1])

    def test_different_seeds_differ(self, game):
        a = make_gpu(Clock(), seed=1).run_playouts(
            [game.initial_state()], LaunchConfig(2, 64)
        )
        b = make_gpu(Clock(), seed=2).run_playouts(
            [game.initial_state()], LaunchConfig(2, 64)
        )
        assert not np.array_equal(a.winners, b.winners)


class TestBlockWins:
    def test_block_wins_sum(self, game):
        gpu = make_gpu(Clock())
        res = gpu.run_playouts([game.initial_state()], LaunchConfig(4, 32))
        wins_black = res.block_wins(1)
        wins_white = res.block_wins(-1)
        draws = res.block_draws()
        np.testing.assert_array_equal(
            wins_black + wins_white + draws, np.full(4, 32)
        )


class TestAsyncLaunch:
    def test_async_returns_immediately(self, game):
        clock = Clock()
        gpu = make_gpu(clock)
        ev = gpu.launch_async([game.initial_state()], LaunchConfig(2, 32))
        assert clock.now == 0.0
        assert not gpu.stream.query(ev)
        result = gpu.stream.synchronize(ev)
        assert result.playouts == 64
        assert clock.now == pytest.approx(result.timing.total_s)

    def test_other_games(self):
        from repro.games import TicTacToe

        game = TicTacToe()
        gpu = make_gpu(Clock(), game_name="tictactoe")
        res = gpu.run_playouts([game.initial_state()], LaunchConfig(2, 32))
        assert res.playouts == 64
        assert np.all(res.block_steps <= 9)


class TestDeviceMemoryAccounting:
    def test_buffers_freed_after_kernel(self, game):
        gpu = make_gpu(Clock())
        gpu.run_playouts([game.initial_state()], LaunchConfig(2, 32))
        assert gpu.memory.bytes_in_use == 0
        assert gpu.memory.live_allocations() == []

    def test_oom_on_absurd_grid(self, game):
        from repro.gpu import DeviceMemoryError

        tiny = TESLA_C2050.with_overrides(global_mem_bytes=1024)
        gpu = VirtualGpu(tiny, Clock(), "reversi", seed=1)
        with pytest.raises(DeviceMemoryError, match="out of device"):
            gpu.run_playouts([game.initial_state()], LaunchConfig(2, 32))
        # a failed launch must not leak partial allocations
        assert gpu.memory.bytes_in_use == 0


class TestToyDevice:
    def test_multi_wave_grid_runs(self, game):
        clock = Clock()
        gpu = make_gpu(clock, spec=TOY_DEVICE)
        # toy device: 4 concurrent 32-thread blocks; 12 blocks = 3 waves
        res = gpu.run_playouts([game.initial_state()], LaunchConfig(12, 32))
        assert res.playouts == 384
