"""Tests for Breakthrough, scalar and batch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games import BatchBreakthrough, Breakthrough, BreakthroughState
from repro.games.base import random_playout
from repro.games.breakthrough import (
    DIR_LEFT,
    DIR_RIGHT,
    DIR_STRAIGHT,
    P1_START,
    P2_START,
)
from repro.rng import BatchXorShift128Plus, XorShift64Star
from repro.util.bitops import bit_count, square_mask


@pytest.fixture
def game():
    return Breakthrough()


def play_random_plies(game, n, seed):
    rng = XorShift64Star(seed)
    s = game.initial_state()
    for _ in range(n):
        if game.is_terminal(s):
            break
        moves = game.legal_moves(s)
        s = game.apply(s, moves[rng.randrange(len(moves))])
    return s


class TestRules:
    def test_initial_setup(self, game):
        s = game.initial_state()
        assert bit_count(s.p1) == 16
        assert bit_count(s.p2) == 16
        assert not game.is_terminal(s)

    def test_initial_move_count(self, game):
        # Front row of 8 pawns: 8 straight + 7 left + 7 right = 22.
        assert len(game.legal_moves(game.initial_state())) == 22

    def test_straight_move(self, game):
        s = game.initial_state()
        sq = 1 * 8 + 3  # front-row pawn at d2
        s2 = game.apply(s, sq * 3 + DIR_STRAIGHT)
        assert s2.p1 & square_mask(2, 3)
        assert not s2.p1 & square_mask(1, 3)
        assert s2.to_move == -1

    def test_straight_cannot_capture(self, game):
        s = BreakthroughState(
            p1=square_mask(3, 3),
            p2=square_mask(4, 3) | P2_START,
            to_move=1,
        )
        sq = 3 * 8 + 3
        with pytest.raises(ValueError, match="cannot capture"):
            game.apply(s, sq * 3 + DIR_STRAIGHT)

    def test_diagonal_capture(self, game):
        s = BreakthroughState(
            p1=square_mask(3, 3),
            p2=square_mask(4, 4) | P2_START,
            to_move=1,
        )
        sq = 3 * 8 + 3
        s2 = game.apply(s, sq * 3 + DIR_RIGHT)
        assert s2.p1 & square_mask(4, 4)
        assert not s2.p2 & square_mask(4, 4)
        assert bit_count(s2.p2) == 16

    def test_cannot_move_onto_own(self, game):
        s = game.initial_state()
        sq = 0 * 8 + 3  # back-row pawn blocked by own front row
        with pytest.raises(ValueError, match="own pawn"):
            game.apply(s, sq * 3 + DIR_STRAIGHT)

    def test_no_wraparound_moves(self, game):
        # A pawn on column a cannot move "left" off the board.
        s = BreakthroughState(
            p1=square_mask(3, 0), p2=P2_START, to_move=1
        )
        moves = game.legal_moves(s)
        sq = 3 * 8 + 0
        assert sq * 3 + DIR_LEFT not in moves
        assert sq * 3 + DIR_STRAIGHT in moves

    def test_reaching_goal_wins(self, game):
        s = BreakthroughState(
            p1=square_mask(6, 2),
            p2=square_mask(0, 7),  # far away
            to_move=1,
        )
        sq = 6 * 8 + 2
        s2 = game.apply(s, sq * 3 + DIR_STRAIGHT)
        assert game.is_terminal(s2)
        assert game.winner(s2) == 1

    def test_capturing_all_wins(self, game):
        s = BreakthroughState(
            p1=square_mask(3, 3),
            p2=square_mask(4, 4),
            to_move=1,
        )
        s2 = game.apply(s, (3 * 8 + 3) * 3 + DIR_RIGHT)
        assert game.is_terminal(s2)
        assert game.winner(s2) == 1


class TestPlayouts:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_playout_terminates_with_winner(self, seed):
        game = Breakthrough()
        winner, plies = random_playout(
            game, game.initial_state(), XorShift64Star(seed)
        )
        assert winner in (-1, 1)  # no draws in Breakthrough
        assert 0 < plies <= game.max_game_length

    def test_random_playouts_are_roughly_balanced(self):
        game = Breakthrough()
        wins = sum(
            1
            for seed in range(60)
            if random_playout(
                game, game.initial_state(), XorShift64Star(seed)
            )[0] == 1
        )
        assert 15 < wins < 45


class TestBatch:
    def test_playouts_finish_with_winners(self, game):
        bg = BatchBreakthrough()
        rng = BatchXorShift128Plus(128, seed=2)
        batch = bg.make_batch([game.initial_state()], 128)
        winners, steps = bg.run_playouts(batch, rng)
        assert steps <= game.max_game_length
        assert set(np.unique(winners)).issubset({-1, 1})

    def test_final_states_terminal_in_scalar_rules(self, game):
        bg = BatchBreakthrough()
        rng = BatchXorShift128Plus(64, seed=4)
        batch = bg.make_batch([game.initial_state()], 64)
        bg.run_playouts(batch, rng)
        for i in range(16):
            s = bg.lane_state(batch, i)
            assert game.is_terminal(s)
            assert int(bg.winners(batch)[i]) == game.winner(s)

    def test_pawn_count_never_increases(self, game):
        bg = BatchBreakthrough()
        rng = BatchXorShift128Plus(32, seed=6)
        batch = bg.make_batch([game.initial_state()], 32)
        prev = np.bitwise_count(batch.own | batch.opp)
        for _ in range(40):
            bg.step(batch, rng)
            cur = np.bitwise_count(batch.own | batch.opp)
            assert np.all(cur <= prev)
            prev = cur

    def test_boards_stay_disjoint(self, game):
        bg = BatchBreakthrough()
        rng = BatchXorShift128Plus(32, seed=8)
        batch = bg.make_batch([game.initial_state()], 32)
        for _ in range(60):
            bg.step(batch, rng)
            assert np.all(batch.own & batch.opp == 0)

    def test_mid_game_consistency(self, game):
        bg = BatchBreakthrough()
        for seed in range(4):
            s = play_random_plies(game, 20, seed)
            if game.is_terminal(s):
                continue
            batch = bg.make_batch([s], 8)
            for i in range(8):
                assert bg.lane_state(batch, i) == s
            rng = BatchXorShift128Plus(8, seed=seed)
            bg.run_playouts(batch, rng)
            for i in range(8):
                assert game.is_terminal(bg.lane_state(batch, i))

    def test_batch_win_rate_matches_scalar(self, game):
        bg = BatchBreakthrough()
        rng = BatchXorShift128Plus(512, seed=10)
        batch = bg.make_batch([game.initial_state()], 512)
        winners, _ = bg.run_playouts(batch, rng)
        batch_rate = (winners == 1).mean()
        scalar_rate = (
            sum(
                1
                for seed in range(100)
                if random_playout(
                    game, game.initial_state(), XorShift64Star(seed)
                )[0] == 1
            )
            / 100
        )
        assert abs(batch_rate - scalar_rate) < 0.2


class TestFastPlayout:
    def test_terminates_with_winner(self, game):
        from repro.games.breakthrough import fast_playout

        for seed in range(20):
            winner, plies = fast_playout(
                game.initial_state(), XorShift64Star(seed)
            )
            assert winner in (-1, 1)
            assert 0 < plies <= game.max_game_length

    def test_statistics_match_generic_path(self, game):
        from repro.games.breakthrough import fast_playout

        n = 150
        fast_wins = sum(
            1
            for seed in range(n)
            if fast_playout(
                game.initial_state(), XorShift64Star(seed)
            )[0] == 1
        )
        slow_wins = sum(
            1
            for seed in range(80)
            if random_playout(
                game, game.initial_state(), XorShift64Star(5000 + seed)
            )[0] == 1
        )
        assert abs(fast_wins / n - slow_wins / 80) < 0.2

    def test_mean_length_matches_generic_path(self, game):
        from repro.games.breakthrough import fast_playout

        fast_len = sum(
            fast_playout(game.initial_state(), XorShift64Star(s))[1]
            for s in range(60)
        ) / 60
        slow_len = sum(
            random_playout(
                game, game.initial_state(), XorShift64Star(900 + s)
            )[1]
            for s in range(60)
        ) / 60
        assert abs(fast_len - slow_len) < 12

    def test_mid_game_positions(self, game):
        from repro.games.breakthrough import fast_playout

        for seed in range(5):
            s = play_random_plies(game, 25, seed)
            if game.is_terminal(s):
                continue
            winner, plies = fast_playout(s, XorShift64Star(seed))
            assert winner in (-1, 1)


class TestEngineIntegration:
    def test_block_parallel_on_breakthrough(self, game):
        from repro.core import BlockParallelMcts

        engine = BlockParallelMcts(
            game, seed=1, blocks=2, threads_per_block=32
        )
        result = engine.search(game.initial_state(), budget_s=0.01)
        assert result.move in game.legal_moves(game.initial_state())

    def test_mcts_crushes_random_at_breakthrough(self, game):
        from repro.arena import play_match
        from repro.core import SequentialMcts
        from repro.players import MctsPlayer, RandomPlayer

        def mcts(seed):
            return MctsPlayer(
                game, SequentialMcts(game, seed), move_budget_s=0.01
            )

        def rand(seed):
            return RandomPlayer(game, seed)

        res = play_match(game, mcts, rand, 4, seed=3)
        assert res.win_ratio >= 0.75
