"""Cross-game contract: ``legal_mask`` is ``legal_moves`` as a bitmask.

The arena backend stores untried moves as bitmask rows and relies on
``bits_of(legal_mask(s))`` enumerating exactly ``legal_moves(s)`` in
ascending order, for every reachable state.  Walk random games in each
domain and check the contract at every position.
"""

import pytest

from repro.games import make_game
from repro.rng import XorShift64Star

GAME_NAMES = ("breakthrough", "connect4", "reversi", "tictactoe")


@pytest.mark.parametrize("name", GAME_NAMES)
def test_legal_mask_matches_legal_moves(name):
    from repro.util.bitops import bits_of

    game = make_game(name)
    rng = XorShift64Star(2011)
    for episode in range(6):
        state = game.initial_state()
        while True:
            moves = game.legal_moves(state)
            assert tuple(bits_of(game.legal_mask(state))) == moves
            if not moves:
                break
            state = game.apply(state, moves[rng.randrange(len(moves))])
    # Terminal and full positions report an empty mask.
    assert game.legal_mask(state) == 0


@pytest.mark.parametrize("name", GAME_NAMES)
def test_legal_mask_fits_num_moves(name):
    game = make_game(name)
    state = game.initial_state()
    assert game.legal_mask(state) < (1 << game.num_moves)
