"""Cross-checks between scalar Reversi and the batched SIMT engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games import BatchReversi, Reversi
from repro.games.reversi import flips_for_move, mobility
from repro.games.reversi_batch import flips_batch, mobility_batch
from repro.rng import BatchXorShift128Plus, XorShift64Star
from repro.util.bitops import U64, bits_of


def play_random_plies(game, n, seed):
    rng = XorShift64Star(seed)
    s = game.initial_state()
    for _ in range(n):
        if game.is_terminal(s):
            break
        moves = game.legal_moves(s)
        s = game.apply(s, moves[rng.randrange(len(moves))])
    return s


state_params = st.tuples(
    st.integers(min_value=0, max_value=60),
    st.integers(min_value=0, max_value=2**32),
)


@settings(max_examples=40, deadline=None)
@given(state_params)
def test_mobility_batch_matches_scalar(params):
    plies, seed = params
    game = Reversi()
    s = play_random_plies(game, plies, seed)
    own = s.black if s.to_move == 1 else s.white
    opp = s.white if s.to_move == 1 else s.black
    batch_mob = mobility_batch(
        np.array([own], dtype=U64), np.array([opp], dtype=U64)
    )
    assert int(batch_mob[0]) == mobility(own, opp)


@settings(max_examples=25, deadline=None)
@given(state_params)
def test_flips_batch_matches_scalar(params):
    plies, seed = params
    game = Reversi()
    s = play_random_plies(game, plies, seed)
    if game.is_terminal(s):
        return
    own = s.black if s.to_move == 1 else s.white
    opp = s.white if s.to_move == 1 else s.black
    mob = mobility(own, opp)
    if not mob:
        return
    move_bits = [1 << sq for sq in bits_of(mob)]
    n = len(move_bits)
    out = flips_batch(
        np.full(n, own, dtype=U64),
        np.full(n, opp, dtype=U64),
        np.array(move_bits, dtype=U64),
    )
    for i, mb in enumerate(move_bits):
        assert int(out[i]) == flips_for_move(own, opp, mb)


class TestMakeBatch:
    def test_lane_grouping(self):
        game = Reversi()
        bg = BatchReversi()
        s0 = game.initial_state()
        s1 = game.apply(s0, 2 * 8 + 3)
        batch = bg.make_batch([s0, s1], lanes_per_state=3)
        assert len(batch) == 6
        for i in range(3):
            assert bg.lane_state(batch, i) == s0
        for i in range(3, 6):
            assert bg.lane_state(batch, i) == s1

    def test_rejects_nonpositive_lanes(self):
        bg = BatchReversi()
        with pytest.raises(ValueError):
            bg.make_batch([Reversi().initial_state()], 0)

    def test_terminal_input_marked_done(self):
        from repro.games import ReversiState

        bg = BatchReversi()
        full_black = ReversiState(
            black=0xFFFF_FFFF_FFFF_FFFF, white=0, to_move=1
        )
        batch = bg.make_batch([full_black], 4)
        assert not bg.active(batch).any()
        assert np.all(bg.winners(batch) == 1)
        assert np.all(bg.scores(batch) == 64)


class TestLockstepPlayouts:
    def test_all_lanes_finish(self):
        game = Reversi()
        bg = BatchReversi()
        rng = BatchXorShift128Plus(64, seed=3)
        batch = bg.make_batch([game.initial_state()], 64)
        winners, steps = bg.run_playouts(batch, rng)
        assert not bg.active(batch).any()
        assert steps <= bg.max_game_length
        assert set(np.unique(winners)).issubset({-1, 0, 1})

    def test_final_lanes_are_terminal_scalar_states(self):
        game = Reversi()
        bg = BatchReversi()
        rng = BatchXorShift128Plus(16, seed=9)
        batch = bg.make_batch([game.initial_state()], 16)
        bg.run_playouts(batch, rng)
        for i in range(len(batch)):
            s = bg.lane_state(batch, i)
            assert game.is_terminal(s)

    def test_scores_match_scalar_scoring(self):
        game = Reversi()
        bg = BatchReversi()
        rng = BatchXorShift128Plus(8, seed=11)
        batch = bg.make_batch([game.initial_state()], 8)
        bg.run_playouts(batch, rng)
        scores = bg.scores(batch)
        for i in range(len(batch)):
            assert int(scores[i]) == game.score(bg.lane_state(batch, i))

    def test_deterministic_given_seed(self):
        game = Reversi()
        bg = BatchReversi()
        out = []
        for _ in range(2):
            rng = BatchXorShift128Plus(32, seed=21)
            batch = bg.make_batch([game.initial_state()], 32)
            winners, _ = bg.run_playouts(batch, rng)
            out.append(winners.copy())
        np.testing.assert_array_equal(out[0], out[1])

    def test_win_rate_from_initial_is_balanced(self):
        # Random Reversi playouts from the start are near 50/50 with a
        # small skew; a grossly lopsided result means a rules bug.
        game = Reversi()
        bg = BatchReversi()
        rng = BatchXorShift128Plus(2048, seed=5)
        batch = bg.make_batch([game.initial_state()], 2048)
        winners, _ = bg.run_playouts(batch, rng)
        black_rate = (winners == 1).mean()
        assert 0.35 < black_rate < 0.65

    def test_mid_game_batch_playouts(self):
        game = Reversi()
        bg = BatchReversi()
        s = play_random_plies(game, 30, seed=13)
        rng = BatchXorShift128Plus(64, seed=5)
        batch = bg.make_batch([s], 64)
        winners, steps = bg.run_playouts(batch, rng)
        assert steps <= bg.max_game_length
        assert not bg.active(batch).any()


class TestStepInvariants:
    def test_disc_count_never_decreases(self):
        game = Reversi()
        bg = BatchReversi()
        rng = BatchXorShift128Plus(32, seed=17)
        batch = bg.make_batch([game.initial_state()], 32)
        prev = np.bitwise_count(batch.own | batch.opp)
        for _ in range(20):
            bg.step(batch, rng)
            cur = np.bitwise_count(batch.own | batch.opp)
            assert np.all(cur >= prev)
            prev = cur

    def test_boards_stay_disjoint(self):
        game = Reversi()
        bg = BatchReversi()
        rng = BatchXorShift128Plus(32, seed=19)
        batch = bg.make_batch([game.initial_state()], 32)
        for _ in range(40):
            bg.step(batch, rng)
            assert np.all(batch.own & batch.opp == 0)
