"""Tests for TicTacToe, scalar and batch, including exhaustive checks."""

import numpy as np
import pytest

from repro.games import BatchTicTacToe, TicTacToe, TicTacToeState
from repro.games.base import random_playout
from repro.rng import BatchXorShift128Plus, XorShift64Star


@pytest.fixture
def game():
    return TicTacToe()


def all_reachable_states(game):
    """Every distinct reachable state (the classic 5478)."""
    seen = set()
    stack = [game.initial_state()]
    while stack:
        s = stack.pop()
        if s in seen:
            continue
        seen.add(s)
        if not game.is_terminal(s):
            for m in game.legal_moves(s):
                stack.append(game.apply(s, m))
    return seen


class TestRules:
    def test_initial(self, game):
        s = game.initial_state()
        assert game.legal_moves(s) == tuple(range(9))
        assert game.to_move(s) == 1

    def test_apply_alternates(self, game):
        s = game.apply(game.initial_state(), 4)
        assert game.to_move(s) == -1
        s = game.apply(s, 0)
        assert game.to_move(s) == 1

    def test_occupied_raises(self, game):
        s = game.apply(game.initial_state(), 4)
        with pytest.raises(ValueError):
            game.apply(s, 4)

    def test_out_of_range_raises(self, game):
        with pytest.raises(ValueError):
            game.apply(game.initial_state(), 9)

    def test_row_win(self, game):
        s = TicTacToeState(0b111, 0b110000, 1)
        assert game.is_terminal(s)
        assert game.winner(s) == 1

    def test_draw(self, game):
        # X O X / X O O / O X X
        x = 0b101_001_101 | 0  # cells 0,2,3,7,8 -> careful below
        s = TicTacToeState(
            x=(1 << 0) | (1 << 2) | (1 << 3) | (1 << 7) | (1 << 8),
            o=(1 << 1) | (1 << 4) | (1 << 5) | (1 << 6),
            to_move=1,
        )
        assert game.is_terminal(s)
        assert game.winner(s) == 0


class TestExhaustive:
    def test_reachable_state_count(self, game):
        assert len(all_reachable_states(game)) == 5478

    def test_every_terminal_state_has_consistent_winner(self, game):
        for s in all_reachable_states(game):
            if game.is_terminal(s):
                w = game.winner(s)
                assert w in (-1, 0, 1)
                assert game.legal_moves(s) == ()
            else:
                assert len(game.legal_moves(s)) > 0

    def test_batch_winner_matches_scalar_everywhere(self, game):
        bg = BatchTicTacToe()
        states = sorted(all_reachable_states(game))
        batch = bg.make_batch(states, 1)
        winners = bg.winners(batch)
        done = ~bg.active(batch)
        for i, s in enumerate(states):
            assert bool(done[i]) == game.is_terminal(s)
            if game.is_terminal(s):
                assert int(winners[i]) == game.winner(s)


class TestBatchPlayouts:
    def test_lockstep_playouts_finish(self, game):
        bg = BatchTicTacToe()
        rng = BatchXorShift128Plus(128, seed=2)
        batch = bg.make_batch([game.initial_state()], 128)
        winners, steps = bg.run_playouts(batch, rng)
        assert steps <= 9
        assert not bg.active(batch).any()

    def test_final_states_terminal_in_scalar_rules(self, game):
        bg = BatchTicTacToe()
        rng = BatchXorShift128Plus(32, seed=4)
        batch = bg.make_batch([game.initial_state()], 32)
        bg.run_playouts(batch, rng)
        for i in range(len(batch)):
            assert game.is_terminal(bg.lane_state(batch, i))

    def test_random_playout_first_player_edge(self, game):
        # Random-vs-random TicTacToe favours X roughly 58/29/13.
        bg = BatchTicTacToe()
        rng = BatchXorShift128Plus(4096, seed=6)
        batch = bg.make_batch([game.initial_state()], 4096)
        winners, _ = bg.run_playouts(batch, rng)
        x_rate = (winners == 1).mean()
        o_rate = (winners == -1).mean()
        assert 0.5 < x_rate < 0.66
        assert 0.2 < o_rate < 0.38


def test_scalar_playout_terminates(game):
    winner, plies = random_playout(
        game, game.initial_state(), XorShift64Star(3)
    )
    assert winner in (-1, 0, 1)
    assert 5 <= plies <= 9
