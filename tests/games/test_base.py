"""Tests for the game registry and shared base helpers."""

import pytest

from repro.games import make_batch_game, make_game
from repro.games.base import enumerate_states, playout_with_policy
from repro.rng import XorShift64Star


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["reversi", "tictactoe", "connect4", "breakthrough"]
    )
    def test_make_game(self, name):
        game = make_game(name)
        assert game.name == name
        batch = make_batch_game(name)
        assert batch.name == name
        assert batch.max_game_length == game.max_game_length

    def test_unknown_game(self):
        with pytest.raises(ValueError, match="unknown game"):
            make_game("go")
        with pytest.raises(ValueError, match="unknown game"):
            make_batch_game("chess")


class TestValidateMove:
    def test_accepts_legal(self):
        game = make_game("tictactoe")
        game.validate_move(game.initial_state(), 0)

    def test_rejects_illegal(self):
        game = make_game("tictactoe")
        s = game.apply(game.initial_state(), 0)
        with pytest.raises(ValueError, match="illegal move"):
            game.validate_move(s, 0)


class TestPlayoutWithPolicy:
    def test_first_move_policy(self):
        game = make_game("tictactoe")

        def first_move(game, state, moves, rng):
            return moves[0]

        winner, plies = playout_with_policy(
            game, game.initial_state(), XorShift64Star(1), first_move
        )
        # Moves alternate over the lowest empty cell: X gets 0,2,4,6 and
        # completes the 2-4-6 anti-diagonal on ply 7.
        assert winner == 1
        assert plies == 7


class TestEnumerateStates:
    def test_depth_zero(self):
        game = make_game("tictactoe")
        assert len(enumerate_states(game, 0)) == 1

    def test_depth_one(self):
        game = make_game("tictactoe")
        assert len(enumerate_states(game, 1)) == 10  # root + 9 children

    def test_depth_two_counts_paths(self):
        game = make_game("tictactoe")
        assert len(enumerate_states(game, 2)) == 10 + 72
