"""Tests for vectorised bit selection (the SIMT random-move primitive)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games.batch import select_nth_bit, select_random_bit
from repro.rng import BatchXorShift128Plus
from repro.util.bitops import U64, bit_count, bits_of

boards = st.integers(min_value=0, max_value=2**64 - 1)


@given(boards.filter(lambda b: b != 0), st.data())
def test_select_nth_bit_matches_python(b, data):
    pop = bit_count(b)
    n = data.draw(st.integers(min_value=0, max_value=pop - 1))
    expected = list(bits_of(b))[n]
    out = select_nth_bit(
        np.array([b], dtype=U64), np.array([n], dtype=np.int64)
    )
    assert int(out[0]) == expected


def test_select_nth_bit_many_lanes():
    masks = np.array([0b1, 0b1010, 0xFF, 1 << 63], dtype=U64)
    ns = np.array([0, 1, 7, 0], dtype=np.int64)
    out = select_nth_bit(masks, ns)
    np.testing.assert_array_equal(out, [0, 3, 7, 63])


def test_select_nth_bit_empty_mask_is_harmless():
    out = select_nth_bit(
        np.array([0], dtype=U64), np.array([0], dtype=np.int64)
    )
    assert 0 <= int(out[0]) < 64


class TestSelectRandomBit:
    def test_empty_masks_give_zero(self):
        rng = BatchXorShift128Plus(4, seed=1)
        masks = np.zeros(4, dtype=U64)
        out = select_random_bit(masks, rng)
        assert np.all(out == 0)

    def test_selection_is_subset_of_mask(self):
        rng = BatchXorShift128Plus(64, seed=2)
        masks = BatchXorShift128Plus(64, seed=3).next_u64()
        for _ in range(10):
            out = select_random_bit(masks, rng)
            assert np.all(out & masks == out)
            assert np.all(np.bitwise_count(out) == 1)

    def test_single_bit_mask_always_selected(self):
        rng = BatchXorShift128Plus(8, seed=4)
        masks = np.full(8, 1 << 17, dtype=U64)
        out = select_random_bit(masks, rng)
        assert np.all(out == np.uint64(1 << 17))

    @settings(max_examples=20)
    @given(boards.filter(lambda b: bit_count(b) >= 2))
    def test_roughly_uniform_over_bits(self, b):
        rng = BatchXorShift128Plus(512, seed=5)
        masks = np.full(512, b, dtype=U64)
        counts = {}
        for _ in range(4):
            out = select_random_bit(masks, rng)
            for v in out:
                counts[int(v)] = counts.get(int(v), 0) + 1
        # every set bit should be hit at least once given 2048 draws
        # over at most 64 bits
        assert set(counts) == {1 << i for i in bits_of(b)}
