"""Tests for Connect-4, scalar and batch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games import BatchConnect4, Connect4
from repro.games.base import random_playout
from repro.games.connect4 import BOARD_MASK, has_four
from repro.rng import BatchXorShift128Plus, XorShift64Star


@pytest.fixture
def game():
    return Connect4()


def play_random_plies(game, n, seed):
    rng = XorShift64Star(seed)
    s = game.initial_state()
    for _ in range(n):
        if game.is_terminal(s):
            break
        moves = game.legal_moves(s)
        s = game.apply(s, moves[rng.randrange(len(moves))])
    return s


class TestRules:
    def test_initial_moves(self, game):
        assert game.legal_moves(game.initial_state()) == tuple(range(7))

    def test_discs_stack(self, game):
        s = game.initial_state()
        for _ in range(3):
            s = game.apply(s, 3)
        col3 = (s.p1 | s.p2) >> (3 * 7) & 0x7F
        assert col3 == 0b111  # three discs at the bottom of column 3

    def test_column_fills_up(self, game):
        s = game.initial_state()
        for _ in range(6):
            s = game.apply(s, 0)
        assert 0 not in game.legal_moves(s)
        with pytest.raises(ValueError, match="full"):
            game.apply(s, 0)

    def test_bad_column_raises(self, game):
        with pytest.raises(ValueError):
            game.apply(game.initial_state(), 7)

    def test_vertical_win(self, game):
        s = game.initial_state()
        # X: col 0 four times; O: col 1 three times
        for _ in range(3):
            s = game.apply(s, 0)
            s = game.apply(s, 1)
        s = game.apply(s, 0)
        assert game.is_terminal(s)
        assert game.winner(s) == 1

    def test_horizontal_win(self, game):
        s = game.initial_state()
        # X plays cols 0..3 along the bottom; O stacks on col 6
        for c in range(3):
            s = game.apply(s, c)
            s = game.apply(s, 6)
        s = game.apply(s, 3)
        assert game.is_terminal(s)
        assert game.winner(s) == 1

    def test_diagonal_win(self, game):
        moves = [0, 1, 1, 2, 2, 3, 2, 3, 3, 6, 3]  # X builds / diagonal
        s = game.initial_state()
        for m in moves:
            s = game.apply(s, m)
        assert game.is_terminal(s)
        assert game.winner(s) == 1

    def test_no_wrap_between_columns(self):
        # Discs at the top of col 0 and bottom of col 1 must not form a
        # "vertical" run through the sentinel bit.
        b = sum(1 << (0 * 7 + r) for r in range(3)) | (1 << (1 * 7 + 0))
        assert not has_four(b)


class TestPlayouts:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_playout_terminates(self, seed):
        game = Connect4()
        winner, plies = random_playout(
            game, game.initial_state(), XorShift64Star(seed)
        )
        assert winner in (-1, 0, 1)
        assert 7 <= plies <= 42

    def test_terminal_state_is_win_or_full(self):
        game = Connect4()
        for seed in range(5):
            s = play_random_plies(game, 60, seed)
            assert game.is_terminal(s)
            if game.winner(s) == 0:
                assert (s.p1 | s.p2) == BOARD_MASK


class TestBatch:
    def test_playouts_finish(self, game):
        bg = BatchConnect4()
        rng = BatchXorShift128Plus(128, seed=2)
        batch = bg.make_batch([game.initial_state()], 128)
        winners, steps = bg.run_playouts(batch, rng)
        assert steps <= 42
        assert not bg.active(batch).any()

    def test_final_states_terminal_in_scalar_rules(self, game):
        bg = BatchConnect4()
        rng = BatchXorShift128Plus(64, seed=4)
        batch = bg.make_batch([game.initial_state()], 64)
        bg.run_playouts(batch, rng)
        for i in range(len(batch)):
            s = bg.lane_state(batch, i)
            assert game.is_terminal(s)
            assert int(bg.winners(batch)[i]) == game.winner(s)

    def test_first_player_advantage(self, game):
        # Random-vs-random Connect-4 favours the first player ~55-60%.
        bg = BatchConnect4()
        rng = BatchXorShift128Plus(4096, seed=6)
        batch = bg.make_batch([game.initial_state()], 4096)
        winners, _ = bg.run_playouts(batch, rng)
        p1_rate = (winners == 1).mean()
        assert 0.5 < p1_rate < 0.68

    def test_mid_game_consistency_with_scalar(self, game):
        bg = BatchConnect4()
        for seed in range(4):
            s = play_random_plies(game, 12, seed)
            if game.is_terminal(s):
                continue
            batch = bg.make_batch([s], 8)
            for i in range(8):
                assert bg.lane_state(batch, i) == s
            rng = BatchXorShift128Plus(8, seed=seed)
            bg.run_playouts(batch, rng)
            for i in range(8):
                assert game.is_terminal(bg.lane_state(batch, i))
