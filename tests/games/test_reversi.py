"""Tests for the scalar Reversi engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games import PASS_MOVE, Reversi, ReversiState
from repro.games.base import random_playout
from repro.games.reversi import flips_for_move, mobility
from repro.rng import XorShift64Star
from repro.util.bitops import bit_count, square_mask


@pytest.fixture
def game():
    return Reversi()


def play_random_plies(game, n, seed):
    """A reachable state after up to ``n`` random plies."""
    rng = XorShift64Star(seed)
    s = game.initial_state()
    for _ in range(n):
        if game.is_terminal(s):
            break
        moves = game.legal_moves(s)
        s = game.apply(s, moves[rng.randrange(len(moves))])
    return s


class TestInitialPosition:
    def test_four_discs(self, game):
        s = game.initial_state()
        assert bit_count(s.black) == 2
        assert bit_count(s.white) == 2
        assert s.black & s.white == 0

    def test_black_moves_first(self, game):
        assert game.to_move(game.initial_state()) == 1

    def test_standard_opening_moves(self, game):
        # Black's classical first moves: d3, c4, f5, e6.
        s = game.initial_state()
        moves = set(game.legal_moves(s))
        expected = {
            2 * 8 + 3,  # d3
            3 * 8 + 2,  # c4
            4 * 8 + 5,  # f5
            5 * 8 + 4,  # e6
        }
        assert moves == expected

    def test_not_terminal(self, game):
        assert not game.is_terminal(game.initial_state())

    def test_score_zero(self, game):
        assert game.score(game.initial_state()) == 0


class TestApply:
    def test_first_move_flips_one_disc(self, game):
        s = game.apply(game.initial_state(), 2 * 8 + 3)  # d3
        assert bit_count(s.black) == 4
        assert bit_count(s.white) == 1
        assert game.to_move(s) == -1

    def test_apply_occupied_square_raises(self, game):
        s = game.initial_state()
        with pytest.raises(ValueError, match="occupied"):
            game.apply(s, 3 * 8 + 3)

    def test_apply_nonflipping_square_raises(self, game):
        s = game.initial_state()
        with pytest.raises(ValueError, match="flips nothing"):
            game.apply(s, 0)  # corner a1 flips nothing at the start

    def test_pass_with_moves_available_raises(self, game):
        with pytest.raises(ValueError, match="cannot pass"):
            game.apply(game.initial_state(), PASS_MOVE)

    def test_disc_total_grows_by_one_per_move(self, game):
        s = game.initial_state()
        rng = XorShift64Star(1)
        for _ in range(20):
            if game.is_terminal(s):
                break
            moves = game.legal_moves(s)
            before = game.disc_count(s)
            m = moves[rng.randrange(len(moves))]
            s = game.apply(s, m)
            if m == PASS_MOVE:
                assert game.disc_count(s) == before
            else:
                assert game.disc_count(s) == before + 1


class TestPassAndTerminal:
    def test_forced_pass_position(self, game):
        # Black a1, white b1, white to move: white's only neighbouring
        # black disc sits on the edge with no empty square beyond it, so
        # white has no move -- but black could play c1, so the game is
        # not over and white must pass.
        s = ReversiState(
            black=square_mask(0, 0),
            white=square_mask(0, 1),
            to_move=-1,
        )
        assert game.legal_moves(s) == (PASS_MOVE,)
        assert not game.is_terminal(s)

    def test_pass_switches_player_only(self, game):
        s = ReversiState(
            black=square_mask(7, 7),
            white=square_mask(0, 0) | square_mask(0, 1),
            to_move=-1,
        )
        # if white must pass, applying PASS flips to_move and boards stay
        if game.legal_moves(s) == (PASS_MOVE,):
            s2 = game.apply(s, PASS_MOVE)
            assert (s2.black, s2.white) == (s.black, s.white)
            assert s2.to_move == 1

    def test_empty_board_is_terminal_nonsense_guard(self, game):
        s = ReversiState(0, 0, 1)
        assert game.is_terminal(s)
        assert game.winner(s) == 0


class TestRandomPlayouts:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_playout_terminates_and_scores(self, seed):
        game = Reversi()
        rng = XorShift64Star(seed)
        winner, plies = random_playout(game, game.initial_state(), rng)
        assert winner in (-1, 0, 1)
        assert 0 < plies <= game.max_game_length

    def test_final_position_has_no_moves_for_either(self):
        game = Reversi()
        rng = XorShift64Star(7)
        s = game.initial_state()
        while not game.is_terminal(s):
            moves = game.legal_moves(s)
            s = game.apply(s, moves[rng.randrange(len(moves))])
        own = s.black if s.to_move == 1 else s.white
        opp = s.white if s.to_move == 1 else s.black
        assert mobility(own, opp) == 0
        assert mobility(opp, own) == 0

    def test_winner_sign_matches_score(self):
        game = Reversi()
        for seed in range(5):
            s = play_random_plies(game, 200, seed)
            diff = game.score(s)
            w = game.winner(s)
            assert w == (diff > 0) - (diff < 0)


class TestMobilityFlipsInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_flips_nonempty_iff_move_legal(self, plies, seed):
        game = Reversi()
        s = play_random_plies(game, plies, seed)
        if game.is_terminal(s):
            return
        own = s.black if s.to_move == 1 else s.white
        opp = s.white if s.to_move == 1 else s.black
        mob = mobility(own, opp)
        empty = ~(own | opp) & 0xFFFF_FFFF_FFFF_FFFF
        for sq in range(64):
            bit = 1 << sq
            if not bit & empty:
                continue
            legal = bool(mob & bit)
            flips = flips_for_move(own, opp, bit)
            assert legal == bool(flips)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_flips_are_opponent_discs(self, plies, seed):
        game = Reversi()
        s = play_random_plies(game, plies, seed)
        if game.is_terminal(s):
            return
        own = s.black if s.to_move == 1 else s.white
        opp = s.white if s.to_move == 1 else s.black
        for sq in list(range(64))[:8]:
            flips = flips_for_move(own, opp, 1 << sq)
            assert flips & opp == flips


class TestRender:
    def test_render_shows_discs_and_mover(self, game):
        art = game.render(game.initial_state())
        assert art.count("X") == 3  # 2 discs + "black (X)" label
        assert "to move: black" in art
