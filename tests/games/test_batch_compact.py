"""Tests for generic batch compaction and the tracked runner."""

import numpy as np
import pytest

from repro.games import (
    BatchBreakthrough,
    BatchConnect4,
    BatchReversi,
    BatchTicTacToe,
    make_batch_game,
    make_game,
)
from repro.games.batch import run_playouts_tracked
from repro.rng import BatchXorShift128Plus

ALL_BATCH = [BatchReversi, BatchTicTacToe, BatchConnect4, BatchBreakthrough]


@pytest.mark.parametrize("cls", ALL_BATCH)
class TestCompact:
    def test_keeps_selected_lanes(self, cls):
        bg = cls()
        game = make_game(bg.name)
        batch = bg.make_batch([game.initial_state()], 8)
        keep = np.array([True, False] * 4)
        small = bg.compact(batch, keep)
        assert len(small) == 4
        for i in range(4):
            assert bg.lane_state(small, i) == bg.lane_state(batch, 2 * i)

    def test_tracked_runner_with_and_without_compaction_agree(self, cls):
        """Compaction is a pure optimisation: winners and finish steps
        must be identical either way."""
        bg = cls()
        game = make_game(bg.name)
        a = run_playouts_tracked(
            bg,
            bg.make_batch([game.initial_state()], 64),
            BatchXorShift128Plus(64, seed=7),
            compact_threshold=0.5,
            min_compact_size=16,
        )
        b = run_playouts_tracked(
            bg,
            bg.make_batch([game.initial_state()], 64),
            BatchXorShift128Plus(64, seed=7),
            compact_threshold=0.0,  # never compacts
        )
        np.testing.assert_array_equal(a.winners, b.winners)
        np.testing.assert_array_equal(a.finish_steps, b.finish_steps)
        np.testing.assert_array_equal(a.scores, b.scores)


@pytest.mark.parametrize(
    "name", ["reversi", "tictactoe", "connect4", "breakthrough"]
)
def test_virtual_gpu_runs_every_game(name):
    from repro.gpu import LaunchConfig, TESLA_C2050, VirtualGpu
    from repro.util.clock import Clock

    game = make_game(name)
    gpu = VirtualGpu(TESLA_C2050, Clock(), name, seed=5)
    res = gpu.run_playouts([game.initial_state()], LaunchConfig(2, 32))
    assert res.playouts == 64
    assert res.timing.total_s > 0
    assert np.all(res.block_steps <= make_batch_game(name).max_game_length)
