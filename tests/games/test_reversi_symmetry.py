"""Colour-symmetry property tests for Reversi.

Reversi's rules are colour-blind: swapping every disc's colour and the
side to move must mirror mobility, flips, scores and winners exactly.
A bug that favours one colour (easy to introduce in perspective-swap
code) fails these immediately.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games import Reversi, ReversiState
from repro.games.reversi import mobility
from repro.rng import XorShift64Star


def play_random_plies(game, n, seed):
    rng = XorShift64Star(seed)
    s = game.initial_state()
    for _ in range(n):
        if game.is_terminal(s):
            break
        moves = game.legal_moves(s)
        s = game.apply(s, moves[rng.randrange(len(moves))])
    return s


def colour_swap(state: ReversiState) -> ReversiState:
    return ReversiState(state.white, state.black, -state.to_move)


state_params = st.tuples(
    st.integers(min_value=0, max_value=60),
    st.integers(min_value=0, max_value=2**32),
)


@settings(max_examples=30, deadline=None)
@given(state_params)
def test_legal_moves_are_colour_symmetric(params):
    plies, seed = params
    game = Reversi()
    s = play_random_plies(game, plies, seed)
    assert game.legal_moves(s) == game.legal_moves(colour_swap(s))


@settings(max_examples=30, deadline=None)
@given(state_params)
def test_terminal_and_winner_flip_under_swap(params):
    plies, seed = params
    game = Reversi()
    s = play_random_plies(game, plies, seed)
    swapped = colour_swap(s)
    assert game.is_terminal(s) == game.is_terminal(swapped)
    assert game.winner(s) == -game.winner(swapped)
    assert game.score(s) == -game.score(swapped)


@settings(max_examples=20, deadline=None)
@given(state_params)
def test_apply_commutes_with_colour_swap(params):
    plies, seed = params
    game = Reversi()
    s = play_random_plies(game, plies, seed)
    if game.is_terminal(s):
        return
    for move in game.legal_moves(s)[:4]:
        a = colour_swap(game.apply(s, move))
        b = game.apply(colour_swap(s), move)
        assert a == b


@settings(max_examples=30, deadline=None)
@given(state_params)
def test_mobility_symmetry(params):
    plies, seed = params
    game = Reversi()
    s = play_random_plies(game, plies, seed)
    assert mobility(s.black, s.white) == mobility(s.black, s.white)
    # own/opp mobility from the two perspectives are each other's
    # mirror under the swap
    swapped = colour_swap(s)
    assert mobility(s.black, s.white) == mobility(
        swapped.white, swapped.black
    )
