"""Property tests: every batched game agrees with its scalar twin.

For each registered game, hypothesis drives a random (but legal)
scalar move sequence to an arbitrary reachable state, then checks the
batch engine against the scalar rules at that state:

* ``make_batch`` lanes round-trip through ``lane_state`` to the exact
  scalar state;
* ``active`` agrees with scalar terminal detection, and ``winners`` /
  ``scores`` agree with the scalar winner and score on finished lanes;
* one vectorised ``step`` moves every active lane to a state reachable
  by exactly one scalar legal move (the legal-move-mask oracle: a lane
  can never land outside the scalar successor set);
* a full ``run_playouts`` leaves every lane in a scalar-terminal state
  whose batch winner/score equals the scalar evaluation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games import make_batch_game, make_game
from repro.rng import BatchXorShift128Plus, XorShift64Star

GAME_NAMES = ("tictactoe", "connect4", "reversi", "breakthrough")

#: Enough random plies to reach mid- and end-game states everywhere.
MAX_PLIES = {
    "tictactoe": 9,
    "connect4": 42,
    "reversi": 60,
    "breakthrough": 60,
}

state_params = st.tuples(
    st.integers(min_value=0, max_value=60),
    st.integers(min_value=0, max_value=2**32),
)


def reach_state(game, plies, seed):
    """Walk ``plies`` uniformly-random scalar legal moves."""
    rng = XorShift64Star(seed)
    state = game.initial_state()
    for _ in range(plies):
        if game.is_terminal(state):
            break
        moves = game.legal_moves(state)
        state = game.apply(state, moves[rng.randrange(len(moves))])
    return state


@pytest.mark.parametrize("name", GAME_NAMES)
@settings(max_examples=30, deadline=None)
@given(params=state_params)
def test_lane_state_roundtrips_and_terminal_detection(name, params):
    plies, seed = params
    game = make_game(name)
    bg = make_batch_game(name)
    state = reach_state(game, min(plies, MAX_PLIES[name]), seed)

    batch = bg.make_batch([state], lanes_per_state=3)
    for lane in range(3):
        assert bg.lane_state(batch, lane) == state
    terminal = game.is_terminal(state)
    assert list(bg.active(batch)) == [not terminal] * 3
    if terminal:
        assert list(bg.winners(batch)) == [game.winner(state)] * 3
        assert list(bg.scores(batch)) == [game.score(state)] * 3


@pytest.mark.parametrize("name", GAME_NAMES)
@settings(max_examples=30, deadline=None)
@given(params=state_params)
def test_step_stays_inside_scalar_successor_set(name, params):
    plies, seed = params
    game = make_game(name)
    bg = make_batch_game(name)
    state = reach_state(game, min(plies, MAX_PLIES[name]), seed)
    if game.is_terminal(state):
        return

    lanes = 8
    batch = bg.make_batch([state], lanes_per_state=lanes)
    rng = BatchXorShift128Plus(lanes, seed=seed + 1)
    bg.step(batch, rng)
    successors = {
        game.apply(state, move) for move in game.legal_moves(state)
    }
    for lane in range(lanes):
        assert bg.lane_state(batch, lane) in successors


@pytest.mark.parametrize("name", GAME_NAMES)
@settings(max_examples=15, deadline=None)
@given(params=state_params)
def test_playout_outcomes_match_scalar_evaluation(name, params):
    plies, seed = params
    game = make_game(name)
    bg = make_batch_game(name)
    state = reach_state(game, min(plies, MAX_PLIES[name]), seed)

    lanes = 4
    batch = bg.make_batch([state], lanes_per_state=lanes)
    rng = BatchXorShift128Plus(lanes, seed=seed + 2)
    winners, steps = bg.run_playouts(batch, rng)
    assert steps <= bg.max_game_length
    scores = bg.scores(batch)
    for lane in range(lanes):
        final = bg.lane_state(batch, lane)
        assert game.is_terminal(final)
        assert int(winners[lane]) == game.winner(final)
        assert int(scores[lane]) == game.score(final)


@pytest.mark.parametrize("name", GAME_NAMES)
def test_batch_name_matches_scalar(name):
    assert make_batch_game(name).name == make_game(name).name == name
