"""Canonical Zobrist hashing: incremental == full recompute, batch ==
scalar, and the keys actually behave like a position identity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games import make_batch_game, make_game, table_for
from repro.games.zobrist import NUM_SQUARES, ZobristTable
from repro.rng import XorShift64Star

GAMES = ("tictactoe", "connect4", "reversi", "breakthrough")


def random_walk(game, seed, max_plies=60):
    """States along one random game, capped at ``max_plies``."""
    rng = XorShift64Star(seed)
    state = game.initial_state()
    states = [state]
    for _ in range(max_plies):
        if game.is_terminal(state):
            break
        moves = game.legal_moves(state)
        state = game.apply(state, moves[rng.randrange(len(moves))])
        states.append(state)
    return states


# -- table construction ------------------------------------------------------


def test_tables_are_deterministic_and_per_game():
    a = ZobristTable("reversi")
    b = table_for("reversi")
    assert a.piece_keys == b.piece_keys
    assert a.side_key == b.side_key
    assert table_for("reversi") is table_for("reversi")
    assert table_for("connect4").piece_keys != a.piece_keys


def test_table_keys_are_distinct():
    table = table_for("reversi")
    keys = {
        k for plane in table.piece_keys for k in plane
    } | {table.side_key}
    assert len(keys) == 2 * NUM_SQUARES + 1


@pytest.mark.parametrize("game_name", GAMES)
def test_side_to_move_changes_key(game_name):
    game = make_game(game_name)
    state = game.initial_state()
    p1, p2 = game.zobrist_planes(state)
    table = table_for(game_name)
    assert table.fold(p1, p2, 1) != table.fold(p1, p2, -1)
    assert game.zobrist_key(state) == table.fold(p1, p2, 1)


# -- scalar: incremental == full recompute -----------------------------------


@pytest.mark.parametrize("game_name", GAMES)
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_incremental_matches_recompute(game_name, seed):
    game = make_game(game_name)
    rng = XorShift64Star(seed)
    state = game.initial_state()
    key = game.zobrist_key(state)
    for _ in range(60):
        if game.is_terminal(state):
            break
        moves = game.legal_moves(state)
        move = moves[rng.randrange(len(moves))]
        state, key = game.zobrist_apply(state, move, key)
        assert key == game.zobrist_key(state)


def test_distinct_positions_get_distinct_keys():
    # Not a guarantee (64-bit), but a sanity screen over a few
    # thousand reachable positions per game.
    for game_name in GAMES:
        game = make_game(game_name)
        seen: dict[int, object] = {}
        for seed in range(60):
            for state in random_walk(game, seed):
                key = game.zobrist_key(state)
                prior = seen.setdefault(key, state)
                assert prior == state, (
                    f"{game_name}: collision {prior!r} vs {state!r}"
                )


def test_transposition_same_key():
    # Two move orders reaching the same board share one key.
    game = make_game("tictactoe")
    s = game.initial_state()
    a = game.apply(game.apply(game.apply(s, 0), 4), 8)
    b = game.apply(game.apply(game.apply(s, 8), 4), 0)
    assert a == b
    assert game.zobrist_key(a) == game.zobrist_key(b)


# -- batch: vectorised fold == scalar fold ------------------------------------


@pytest.mark.parametrize("game_name", GAMES)
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_batch_keys_match_scalar(game_name, seed):
    game = make_game(game_name)
    batch_game = make_batch_game(game_name)
    states = [
        random_walk(game, derived)[-1]
        for derived in range(seed, seed + 7)
    ]
    # Drop terminal states: batch games only need to key live lanes,
    # but keep any that happen to be keyable anyway.
    batch = batch_game.make_batch(states, lanes_per_state=2)
    keys = batch_game.zobrist_keys(batch)
    assert keys.dtype == np.uint64
    expected = [game.zobrist_key(s) for s in states for _ in range(2)]
    assert [int(k) for k in keys] == expected


def test_fold_arrays_matches_scalar_fold_random_planes():
    table = table_for("reversi")
    rng = np.random.default_rng(7)
    p1 = rng.integers(0, 2**64, size=64, dtype=np.uint64)
    p2 = rng.integers(0, 2**64, size=64, dtype=np.uint64) & ~p1
    to_move = np.where(rng.random(64) < 0.5, 1, -1).astype(np.int8)
    keys = table.fold_arrays(p1, p2, to_move)
    for i in range(64):
        assert int(keys[i]) == table.fold(
            int(p1[i]), int(p2[i]), int(to_move[i])
        )
