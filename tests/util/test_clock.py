"""Tests for the virtual clock."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.clock import Clock, ClockError, Stopwatch


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            Clock(-1.0)

    def test_advance_accumulates(self):
        c = Clock()
        c.advance(1.5)
        c.advance(2.5)
        assert c.now == 4.0

    def test_advance_returns_new_time(self):
        assert Clock().advance(3.0) == 3.0

    def test_negative_advance_rejected(self):
        c = Clock()
        with pytest.raises(ClockError):
            c.advance(-0.1)

    def test_advance_to_jumps_forward(self):
        c = Clock()
        c.advance_to(10.0)
        assert c.now == 10.0

    def test_advance_to_never_rewinds(self):
        c = Clock(10.0)
        c.advance_to(5.0)
        assert c.now == 10.0

    def test_reset(self):
        c = Clock(9.0)
        c.reset()
        assert c.now == 0.0

    def test_reset_negative_rejected(self):
        with pytest.raises(ClockError):
            Clock().reset(-2.0)


@given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
def test_clock_is_monotone_under_any_advances(steps):
    c = Clock()
    last = 0.0
    for dt in steps:
        c.advance(dt)
        assert c.now >= last
        last = c.now


class TestStopwatch:
    def test_measures_interval(self):
        c = Clock()
        sw = Stopwatch(c)
        c.advance(2.0)
        assert sw.elapsed == 2.0

    def test_restart(self):
        c = Clock()
        sw = Stopwatch(c)
        c.advance(2.0)
        sw.restart()
        c.advance(1.0)
        assert sw.elapsed == 1.0
