"""Unit and property tests for bitboard primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import bitops as bo

U64_MAX = 0xFFFF_FFFF_FFFF_FFFF
boards = st.integers(min_value=0, max_value=U64_MAX)


class TestScalarShifts:
    def test_east_moves_one_column(self):
        b = bo.square_mask(3, 4)
        assert bo.shift_east(b) == bo.square_mask(3, 5)

    def test_west_moves_one_column(self):
        b = bo.square_mask(3, 4)
        assert bo.shift_west(b) == bo.square_mask(3, 3)

    def test_south_moves_one_row(self):
        b = bo.square_mask(3, 4)
        assert bo.shift_south(b) == bo.square_mask(4, 4)

    def test_north_moves_one_row(self):
        b = bo.square_mask(3, 4)
        assert bo.shift_north(b) == bo.square_mask(2, 4)

    def test_east_does_not_wrap(self):
        assert bo.shift_east(bo.square_mask(2, 7)) == 0

    def test_west_does_not_wrap(self):
        assert bo.shift_west(bo.square_mask(2, 0)) == 0

    def test_south_falls_off_bottom(self):
        assert bo.shift_south(bo.square_mask(7, 3)) == 0

    def test_north_falls_off_top(self):
        assert bo.shift_north(bo.square_mask(0, 3)) == 0

    def test_diagonals(self):
        b = bo.square_mask(3, 3)
        assert bo.shift_northeast(b) == bo.square_mask(2, 4)
        assert bo.shift_northwest(b) == bo.square_mask(2, 2)
        assert bo.shift_southeast(b) == bo.square_mask(4, 4)
        assert bo.shift_southwest(b) == bo.square_mask(4, 2)

    def test_corner_diagonals_vanish(self):
        assert bo.shift_northwest(bo.square_mask(0, 0)) == 0
        assert bo.shift_southeast(bo.square_mask(7, 7)) == 0


@given(boards)
def test_scalar_and_vector_shifts_agree(b):
    arr = np.array([b], dtype=bo.U64)
    for fn in bo.ALL_SHIFTS:
        assert int(fn(arr)[0]) == fn(b)


@given(boards)
def test_shift_preserves_popcount_bound(b):
    for fn in bo.ALL_SHIFTS:
        assert bo.bit_count(fn(b)) <= bo.bit_count(b)


@given(boards)
def test_east_then_west_is_identity_off_edges(b):
    interior = b & bo.NOT_COL_0 & bo.NOT_COL_7
    assert bo.shift_west(bo.shift_east(interior)) == interior


@given(boards)
def test_popcount_matches_python(b):
    assert bo.bit_count(b) == bin(b).count("1")
    arr = np.array([b], dtype=bo.U64)
    assert int(bo.bit_count_u64(arr)[0]) == bo.bit_count(b)


@given(boards.filter(lambda b: b != 0))
def test_lsb_is_lowest_set_bit(b):
    low = bo.lsb(b)
    assert low & b == low
    assert bo.bit_count(low) == 1
    assert (low - 1) & b == 0


def test_lsb_of_zero():
    assert bo.lsb(0) == 0


@given(boards)
def test_bits_of_reconstructs(b):
    assert sum(1 << i for i in bo.bits_of(b)) == b


def test_bit_index_round_trip():
    for i in range(64):
        assert bo.bit_index(1 << i) == i


def test_bit_index_rejects_multibit():
    with pytest.raises(ValueError):
        bo.bit_index(0b11)
    with pytest.raises(ValueError):
        bo.bit_index(0)


def test_square_mask_round_trip():
    for r in range(8):
        for c in range(8):
            assert bo.mask_to_square(bo.square_mask(r, c)) == (r, c)


def test_square_mask_bounds():
    with pytest.raises(ValueError):
        bo.square_mask(8, 0)
    with pytest.raises(ValueError):
        bo.square_mask(0, -1)


def test_render_bitboard():
    art = bo.render_bitboard(bo.square_mask(0, 0) | bo.square_mask(7, 7))
    lines = art.split("\n")
    assert len(lines) == 8
    assert lines[0][0] == "x"
    assert lines[7][7] == "x"
    assert art.count("x") == 2
