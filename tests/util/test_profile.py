"""Tests for the phase profiler (repro.util.profile)."""

from repro.util.profile import NULL_PROFILER, PhaseStats, Profiler


def test_phase_accumulates_calls_and_time():
    prof = Profiler()
    for _ in range(3):
        with prof.phase("select"):
            pass
    stats = prof.phases["select"]
    assert stats.calls == 3
    assert stats.total_s >= 0.0
    assert prof.total_s("select") == stats.total_s
    assert prof.total_s("never-entered") == 0.0


def test_mean_of_empty_phase_is_zero():
    assert PhaseStats("x").mean_s == 0.0


def test_counters_accumulate():
    prof = Profiler()
    prof.count("requests")
    prof.count("requests", 4)
    assert prof.counters["requests"] == 5


def test_disabled_profiler_records_nothing():
    prof = Profiler(enabled=False)
    with prof.phase("select"):
        pass
    prof.count("requests", 10)
    assert prof.phases == {}
    assert prof.counters == {}


def test_null_profiler_is_disabled_and_reuses_timer():
    assert not NULL_PROFILER.enabled
    assert NULL_PROFILER.phase("a") is NULL_PROFILER.phase("b")


def test_merge_folds_phases_and_counters():
    a, b = Profiler(), Profiler()
    with a.phase("select"):
        pass
    with b.phase("select"):
        pass
    with b.phase("backprop"):
        pass
    b.count("ticks", 2)
    a.merge(b)
    assert a.phases["select"].calls == 2
    assert a.phases["backprop"].calls == 1
    assert a.counters["ticks"] == 2
    # The source is not mutated.
    assert b.phases["select"].calls == 1


def test_render_lists_phases_and_counters():
    prof = Profiler()
    with prof.phase("select"):
        pass
    prof.count("requests", 7)
    out = prof.render(title="t")
    assert "select" in out
    assert "#requests" in out
    assert "7" in out


def test_exceptions_still_recorded():
    prof = Profiler()
    try:
        with prof.phase("boom"):
            raise RuntimeError("x")
    except RuntimeError:
        pass
    assert prof.phases["boom"].calls == 1
