"""Tests for the plain-text table renderer."""

import pytest

from repro.util.tables import ascii_chart, format_series, format_table, sparkline


class TestFormatTable:
    def test_aligns_columns(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.split("\n")
        assert len(lines) == 4
        # header and data rows share the same column offsets
        assert lines[0].index("bb") == lines[2].index("2")

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[0.000012345], [123456.0], [1.5], [0.0]])
        assert "1.234e-05" in out or "1.235e-05" in out
        assert "1.235e+05" in out or "1.234e+05" in out
        assert "1.5" in out


class TestFormatSeries:
    def test_basic(self):
        out = format_series("x", [1, 2], {"y": [10, 20], "z": [30, 40]})
        assert "x" in out and "y" in out and "z" in out
        assert "40" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"y": [1]})


class TestAsciiChart:
    def test_basic_shape(self):
        out = ascii_chart({"a": [0, 1, 2, 3]}, height=4, width=16)
        lines = out.split("\n")
        assert len(lines) == 4 + 3  # grid + two borders + legend
        assert "*=a" in lines[-1]

    def test_rising_series_ends_top_right(self):
        out = ascii_chart({"a": [0, 10]}, height=5, width=10)
        lines = out.split("\n")
        top_grid_row = lines[1]
        assert "*" in top_grid_row[-3:]

    def test_multiple_series_glyphs(self):
        out = ascii_chart({"a": [1, 2], "b": [2, 1]}, height=4, width=8)
        assert "*" in out and "o" in out

    def test_title(self):
        out = ascii_chart({"a": [1]}, title="T")
        assert out.startswith("T\n")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": []})

    def test_too_many_series(self):
        with pytest.raises(ValueError, match="at most"):
            ascii_chart({str(i): [1] for i in range(9)})

    def test_constant_series(self):
        out = ascii_chart({"a": [5, 5, 5]}, height=3, width=6)
        assert "*" in out


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert len(sparkline([1.0, 1.0, 1.0])) == 3

    def test_monotone_series_ends_high(self):
        line = sparkline([0, 1, 2, 3, 4, 5])
        assert line[-1] == "@"
        assert line[0] == " "
