"""Tests for deterministic seed derivation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.seeding import SeedLadder, derive_seed, splitmix64, spread_seeds

seeds = st.integers(min_value=0, max_value=2**64 - 1)


@given(seeds)
def test_derive_is_deterministic(root):
    assert derive_seed(root, "a", 1) == derive_seed(root, "a", 1)


@given(seeds)
def test_derive_depends_on_path(root):
    assert derive_seed(root, "a") != derive_seed(root, "b")
    assert derive_seed(root, 0) != derive_seed(root, 1)


@given(seeds)
def test_derive_never_zero(root):
    assert derive_seed(root) != 0
    assert derive_seed(root, 0, 0, 0) != 0


@given(seeds, seeds)
def test_distinct_roots_distinct_streams(a, b):
    if a != b:
        assert derive_seed(a, "x") != derive_seed(b, "x")


@given(seeds)
def test_splitmix_stays_in_64_bits(x):
    assert 0 <= splitmix64(x) < 2**64


def test_seed_ladder_prefix_isolation():
    fig6 = SeedLadder(7, "fig6")
    fig7 = SeedLadder(7, "fig7")
    assert fig6.seed("game", 0) != fig7.seed("game", 0)


def test_seed_ladder_child_extends_path():
    ladder = SeedLadder(7, "exp")
    child = ladder.child("rank", 3)
    assert child.seed("x") == ladder.seed("rank", 3, "x")


def test_seed_ladder_batch():
    ladder = SeedLadder(11)
    batch = ladder.seeds("game", 16)
    assert len(batch) == 16
    assert len(set(batch)) == 16


def test_spread_seeds_keys():
    out = spread_seeds(3, ["a", "b", 4])
    assert set(out) == {"a", "b", 4}
    assert len(set(out.values())) == 3
