"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig5_speed"])
        assert args.name == "fig5_speed"
        assert args.tier is None


class TestCommands:
    def test_experiments_lists_all_figures(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for fig in ("fig5_speed", "fig6_winratio", "fig9_multigpu"):
            assert fig in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "tesla_c2050" in out
        assert "14 SMs" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            main(["run", "fig42"])

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "abl_sequential_part"]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out
        assert "took" in out

    def test_play_tictactoe(self, capsys):
        code = main(
            [
                "play",
                "--game",
                "tictactoe",
                "--opponent",
                "random",
                "--blocks",
                "2",
                "--tpb",
                "32",
                "--budget",
                "0.002",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "wins" in out or "draw" in out

    def test_play_with_engine_specs(self, capsys):
        code = main(
            [
                "play",
                "--game",
                "tictactoe",
                "--engine",
                "root:2",
                "--opponent-engine",
                "sequential",
                "--budget",
                "0.002",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "wins" in out or "draw" in out

    def test_play_rejects_bad_engine_spec(self):
        with pytest.raises(ValueError, match="warp_drive"):
            main(
                [
                    "play",
                    "--game",
                    "tictactoe",
                    "--engine",
                    "warp_drive",
                ]
            )

    def test_serve_bench_small_load(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        code = main(
            [
                "serve-bench",
                "--loads",
                "4",
                "--budget-scale",
                "0.5",
                "--trace-out",
                str(trace),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "offered load: 4" in out
        assert "requests/s" in out
        assert trace.exists()

    @pytest.mark.faults
    def test_serve_bench_crash_then_resume(self, capsys, tmp_path):
        journal = tmp_path / "journal.jsonl"
        common = [
            "serve-bench",
            "--loads",
            "8",
            "--devices",
            "2",
            "--budget-scale",
            "0.25",
            "--journal",
            str(journal),
            "--checkpoint-every",
            "5",
        ]
        code = main(common + ["--faults", "crash=tick:20"])
        out = capsys.readouterr().out
        assert code == 3
        assert "service crashed" in out
        assert journal.exists()

        code = main(common + ["--resume"])
        out = capsys.readouterr().out
        assert code == 0
        assert "recovered (adopted)" in out
        assert "resumed from checkpoint" in out

    def test_serve_bench_resume_requires_journal(self, capsys):
        assert main(["serve-bench", "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_serve_bench_journal_single_load_only(self, capsys, tmp_path):
        code = main(
            [
                "serve-bench",
                "--loads",
                "4,8",
                "--journal",
                str(tmp_path / "j.jsonl"),
            ]
        )
        assert code == 2
        assert "single" in capsys.readouterr().err
