"""Fault-injection bench: resilient serving under a fault-rate sweep.

The resilience layer's acceptance claims, measured end-to-end on the
64-request mixed workload (no deadlines -- resilience, not deadline
pressure, is under test):

* at a 10% per-launch fault rate the workload completes 100% -- some
  requests degraded (lost playout batches, reduced effective budget),
  zero errors;
* at fault rate 0 the resilient service is a strict no-op -- the run
  fingerprint is identical to a service built without a fault plan;
* injection is deterministic under the plan seed: identical retry
  counts, placements and metrics across runs.

The sweep reports completion rate, p50/p95 latency, retry overhead and
injected-fault counts at each fault rate.  A second sweep measures
crash recovery: a journalled service is killed at a planned tick and
recovered, and MTTR (the recovered run's virtual time to finish the
interrupted work) is reported against the checkpoint interval --
denser checkpoints salvage more iterations and shrink MTTR.

Run standalone with ``python benchmarks/bench_faults.py`` (or
``--smoke`` for the seconds-scale CI gate); under pytest the quick
tier scales budgets down (REPRO_TIER=default restores full budgets).
"""

import sys
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path

from repro.faults import FaultPlan
from repro.harness.common import resolve_tier
from repro.serve import (
    SearchService,
    ServiceCrash,
    WorkloadConfig,
    make_workload,
)

try:
    from benchmarks.bench_serve import fingerprint
except ImportError:  # standalone `python benchmarks/bench_faults.py`
    from bench_serve import fingerprint

#: The canonical 10% per-launch fault mix: failed launches dominate,
#: with lost results and absorbed latency spikes riding along.
FAULT_MIX = FaultPlan(
    launch_fail_rate=0.05,
    lost_result_rate=0.03,
    stall_rate=0.02,
    stall_factor=8.0,
    mpi_drop_rate=0.05,
    seed=7,
)


@dataclass(frozen=True)
class FaultBenchConfig:
    n_requests: int = 64
    #: Scale factors applied to FAULT_MIX's 10% total per-launch rate.
    fault_scales: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0)
    budget_scale: float = 1.0
    n_devices: int = 4
    max_active: int = 64
    seed: int = 2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "FaultBenchConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return FaultBenchConfig(budget_scale=0.25)
        if tier == "full":
            return FaultBenchConfig(
                budget_scale=2.0,
                fault_scales=(0.0, 0.25, 0.5, 1.0, 2.0, 4.0),
            )
        return FaultBenchConfig()


def run_with_faults(
    cfg: FaultBenchConfig, plan: FaultPlan | None = FAULT_MIX
):
    """Serve the mixed workload under ``plan`` (None = no fault layer)."""
    workload = make_workload(
        WorkloadConfig(
            n_requests=cfg.n_requests,
            seed=cfg.seed,
            budget_scale=cfg.budget_scale,
            deadline_s=None,
        )
    )
    service = SearchService(
        n_devices=cfg.n_devices,
        max_active=cfg.max_active,
        seed=cfg.seed,
        faults=plan,
    )
    service.submit_all(workload)
    records = service.run()
    return records, service.report()


def run_fault_sweep(cfg: FaultBenchConfig):
    """Fault-rate scale -> ServiceReport, over ``cfg.fault_scales``."""
    return {
        scale: run_with_faults(cfg, FAULT_MIX.scaled(scale))[1]
        for scale in cfg.fault_scales
    }


def render_sweep(reports) -> str:
    from repro.util.tables import format_series

    scales = sorted(reports)
    return format_series(
        "fault scale",
        [f"{s:g}x" for s in scales],
        {
            "completion": [
                f"{reports[s].completion_rate * 100:.0f}%"
                for s in scales
            ],
            "degraded": [str(reports[s].degraded) for s in scales],
            "p50 latency (ms)": [
                f"{reports[s].p50_latency_s * 1e3:.2f}" for s in scales
            ],
            "p95 latency (ms)": [
                f"{reports[s].p95_latency_s * 1e3:.2f}" for s in scales
            ],
            "retries": [str(reports[s].retries) for s in scales],
            "retry overhead (ms)": [
                f"{reports[s].retry_overhead_s * 1e3:.2f}"
                for s in scales
            ],
            "faults": [
                str(sum(reports[s].faults_injected.values()))
                for s in scales
            ],
        },
        title="fault-rate sweep (mixed workload, shared 4-GPU pool)",
    )


@dataclass(frozen=True)
class CrashBenchConfig:
    n_requests: int = 32
    crash_tick: int = 30
    #: Checkpoint intervals (iterations) swept for the MTTR curve.
    checkpoint_intervals: tuple[int, ...] = (5, 20, 80, 0)
    budget_scale: float = 1.0
    n_devices: int = 4
    max_active: int = 64
    seed: int = 2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "CrashBenchConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return CrashBenchConfig(
                n_requests=12, crash_tick=12, budget_scale=0.25
            )
        if tier == "full":
            return CrashBenchConfig(
                n_requests=64,
                crash_tick=60,
                checkpoint_intervals=(2, 5, 10, 20, 40, 80, 0),
                budget_scale=2.0,
            )
        return CrashBenchConfig()


@dataclass(frozen=True)
class RecoveryOutcome:
    """One crash/recover cycle, folded for the MTTR table."""

    crashed_at_s: float
    mttr_s: float
    adopted: int
    resumed: int
    restarted: int
    iterations_salvaged: int
    completed: int


def run_crash_recovery(
    cfg: CrashBenchConfig, checkpoint_every: int, journal_dir=None
) -> RecoveryOutcome:
    """Kill a journalled run at ``cfg.crash_tick``, recover, report."""
    workload = make_workload(
        WorkloadConfig(
            n_requests=cfg.n_requests,
            seed=cfg.seed,
            budget_scale=cfg.budget_scale,
            deadline_s=None,
        )
    )
    if journal_dir is None:
        with tempfile.TemporaryDirectory() as tmp:
            return run_crash_recovery(cfg, checkpoint_every, tmp)
    path = Path(journal_dir) / f"crash_{checkpoint_every}.jsonl"
    service = SearchService(
        n_devices=cfg.n_devices,
        max_active=cfg.max_active,
        seed=cfg.seed,
        journal=path,
        checkpoint_every=checkpoint_every,
        faults=FaultPlan.parse(f"crash=tick:{cfg.crash_tick}"),
    )
    service.submit_all(workload)
    try:
        service.run()
        raise AssertionError("planned crash never fired")
    except ServiceCrash:
        crashed_at_s = service.clock.now

    recovered = SearchService.recover(
        path,
        n_devices=cfg.n_devices,
        max_active=cfg.max_active,
        seed=cfg.seed,
        checkpoint_every=checkpoint_every,
    )
    recovered.run()
    report = recovered.report()
    return RecoveryOutcome(
        crashed_at_s=crashed_at_s,
        # MTTR: virtual time the recovered service needs to finish the
        # work the crash interrupted.
        mttr_s=report.elapsed_s,
        adopted=report.recovered,
        resumed=report.resumed,
        restarted=report.restarted,
        iterations_salvaged=report.recovered_iterations,
        completed=report.completed,
    )


def run_mttr_sweep(cfg: CrashBenchConfig):
    """Checkpoint interval -> RecoveryOutcome for a fixed crash."""
    return {
        every: run_crash_recovery(cfg, every)
        for every in cfg.checkpoint_intervals
    }


def render_mttr_sweep(outcomes) -> str:
    from repro.util.tables import format_series

    intervals = sorted(outcomes, key=lambda k: (k == 0, k))
    return format_series(
        "checkpoint every",
        [str(i) if i else "off" for i in intervals],
        {
            "MTTR (ms)": [
                f"{outcomes[i].mttr_s * 1e3:.2f}" for i in intervals
            ],
            "adopted": [str(outcomes[i].adopted) for i in intervals],
            "resumed": [str(outcomes[i].resumed) for i in intervals],
            "restarted": [
                str(outcomes[i].restarted) for i in intervals
            ],
            "iters salvaged": [
                str(outcomes[i].iterations_salvaged) for i in intervals
            ],
        },
        title="crash-recovery sweep (journalled service, planned kill)",
    )


def test_ten_percent_faults_complete_without_errors(run_once):
    cfg = FaultBenchConfig.for_tier()
    _, report = run_once(run_with_faults, cfg)
    print()
    print(report.render())
    assert report.completed == cfg.n_requests
    assert report.completion_rate == 1.0
    assert report.missed == 0
    assert report.rejected == 0
    assert sum(report.faults_injected.values()) > 0
    assert report.retries > 0


def test_zero_fault_rate_is_a_noop(run_once):
    cfg = FaultBenchConfig.for_tier()

    def compare():
        baseline = run_with_faults(cfg, plan=None)
        zero_rate = run_with_faults(cfg, FAULT_MIX.scaled(0.0))
        return baseline, zero_rate

    (base_records, base_report), (zero_records, zero_report) = (
        run_once(compare)
    )
    assert fingerprint(base_records) == fingerprint(zero_records)
    assert base_report == zero_report
    assert zero_report.faults_injected == {}
    assert zero_report.retries == 0


def test_fault_injection_deterministic(run_once):
    cfg = FaultBenchConfig.for_tier()
    records, report = run_once(run_with_faults, cfg)
    again, report2 = run_with_faults(cfg)
    assert fingerprint(records) == fingerprint(again)
    assert report == report2
    assert [r.lost_lanes for r in records] == [
        r.lost_lanes for r in again
    ]
    assert [r.degraded for r in records] == [r.degraded for r in again]


def test_fault_sweep_degrades_gracefully(run_once):
    cfg = FaultBenchConfig.for_tier()
    reports = run_once(run_fault_sweep, cfg)
    print()
    print(render_sweep(reports))
    assert set(reports) == set(cfg.fault_scales)
    for scale, report in reports.items():
        assert report.completion_rate == 1.0, (
            f"errors at fault scale {scale}"
        )
    injected = [
        sum(reports[s].faults_injected.values())
        for s in sorted(reports)
    ]
    assert injected == sorted(injected)


def test_crash_recovery_completes_every_request(run_once, tmp_path):
    cfg = CrashBenchConfig.for_tier()
    outcome = run_once(
        run_crash_recovery, cfg, 5, journal_dir=tmp_path
    )
    assert outcome.completed == cfg.n_requests
    assert outcome.adopted + outcome.resumed + outcome.restarted == (
        cfg.n_requests
    )
    assert outcome.resumed > 0
    assert outcome.iterations_salvaged > 0


def test_denser_checkpoints_salvage_no_less_work(run_once):
    cfg = CrashBenchConfig.for_tier()
    outcomes = run_once(run_mttr_sweep, cfg)
    print()
    print(render_mttr_sweep(outcomes))
    for outcome in outcomes.values():
        assert outcome.completed == cfg.n_requests
    # With checkpointing off nothing is salvaged; the densest interval
    # salvages at least as much as any sparser one.
    assert outcomes[0].iterations_salvaged == 0
    assert outcomes[0].resumed == 0
    densest = min(i for i in outcomes if i)
    assert outcomes[densest].iterations_salvaged == max(
        o.iterations_salvaged for o in outcomes.values()
    )


def _main(argv) -> int:  # pragma: no cover
    smoke = "--smoke" in argv
    if smoke:
        fault_cfg = FaultBenchConfig.for_tier("quick")
        crash_cfg = CrashBenchConfig.for_tier("quick")
    else:
        fault_cfg = replace(
            FaultBenchConfig.for_tier(), budget_scale=1.0
        )
        crash_cfg = CrashBenchConfig.for_tier()
    _, report = run_with_faults(fault_cfg)
    print("10% per-launch fault mix:")
    print(report.render())
    print()
    print(render_sweep(run_fault_sweep(fault_cfg)))
    print()
    outcomes = run_mttr_sweep(crash_cfg)
    print(render_mttr_sweep(outcomes))
    incomplete = [
        every
        for every, outcome in outcomes.items()
        if outcome.completed != crash_cfg.n_requests
    ]
    if incomplete:
        print(f"FAIL: requests lost at intervals {incomplete}")
        return 1
    if smoke:
        print("smoke OK: crash recovery completed every request")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_main(sys.argv[1:]))
