"""Fault-injection bench: resilient serving under a fault-rate sweep.

The resilience layer's acceptance claims, measured end-to-end on the
64-request mixed workload (no deadlines -- resilience, not deadline
pressure, is under test):

* at a 10% per-launch fault rate the workload completes 100% -- some
  requests degraded (lost playout batches, reduced effective budget),
  zero errors;
* at fault rate 0 the resilient service is a strict no-op -- the run
  fingerprint is identical to a service built without a fault plan;
* injection is deterministic under the plan seed: identical retry
  counts, placements and metrics across runs.

The sweep reports completion rate, p50/p95 latency, retry overhead and
injected-fault counts at each fault rate.  Run standalone with
``python benchmarks/bench_faults.py``; under pytest the quick tier
scales budgets down (REPRO_TIER=default restores the full budgets).
"""

from dataclasses import dataclass, replace

from repro.faults import FaultPlan
from repro.harness.common import resolve_tier
from repro.serve import SearchService, WorkloadConfig, make_workload

try:
    from benchmarks.bench_serve import fingerprint
except ImportError:  # standalone `python benchmarks/bench_faults.py`
    from bench_serve import fingerprint

#: The canonical 10% per-launch fault mix: failed launches dominate,
#: with lost results and absorbed latency spikes riding along.
FAULT_MIX = FaultPlan(
    launch_fail_rate=0.05,
    lost_result_rate=0.03,
    stall_rate=0.02,
    stall_factor=8.0,
    mpi_drop_rate=0.05,
    seed=7,
)


@dataclass(frozen=True)
class FaultBenchConfig:
    n_requests: int = 64
    #: Scale factors applied to FAULT_MIX's 10% total per-launch rate.
    fault_scales: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0)
    budget_scale: float = 1.0
    n_devices: int = 4
    max_active: int = 64
    seed: int = 2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "FaultBenchConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return FaultBenchConfig(budget_scale=0.25)
        if tier == "full":
            return FaultBenchConfig(
                budget_scale=2.0,
                fault_scales=(0.0, 0.25, 0.5, 1.0, 2.0, 4.0),
            )
        return FaultBenchConfig()


def run_with_faults(
    cfg: FaultBenchConfig, plan: FaultPlan | None = FAULT_MIX
):
    """Serve the mixed workload under ``plan`` (None = no fault layer)."""
    workload = make_workload(
        WorkloadConfig(
            n_requests=cfg.n_requests,
            seed=cfg.seed,
            budget_scale=cfg.budget_scale,
            deadline_s=None,
        )
    )
    service = SearchService(
        n_devices=cfg.n_devices,
        max_active=cfg.max_active,
        seed=cfg.seed,
        faults=plan,
    )
    service.submit_all(workload)
    records = service.run()
    return records, service.report()


def run_fault_sweep(cfg: FaultBenchConfig):
    """Fault-rate scale -> ServiceReport, over ``cfg.fault_scales``."""
    return {
        scale: run_with_faults(cfg, FAULT_MIX.scaled(scale))[1]
        for scale in cfg.fault_scales
    }


def render_sweep(reports) -> str:
    from repro.util.tables import format_series

    scales = sorted(reports)
    return format_series(
        "fault scale",
        [f"{s:g}x" for s in scales],
        {
            "completion": [
                f"{reports[s].completion_rate * 100:.0f}%"
                for s in scales
            ],
            "degraded": [str(reports[s].degraded) for s in scales],
            "p50 latency (ms)": [
                f"{reports[s].p50_latency_s * 1e3:.2f}" for s in scales
            ],
            "p95 latency (ms)": [
                f"{reports[s].p95_latency_s * 1e3:.2f}" for s in scales
            ],
            "retries": [str(reports[s].retries) for s in scales],
            "retry overhead (ms)": [
                f"{reports[s].retry_overhead_s * 1e3:.2f}"
                for s in scales
            ],
            "faults": [
                str(sum(reports[s].faults_injected.values()))
                for s in scales
            ],
        },
        title="fault-rate sweep (mixed workload, shared 4-GPU pool)",
    )


def test_ten_percent_faults_complete_without_errors(run_once):
    cfg = FaultBenchConfig.for_tier()
    _, report = run_once(run_with_faults, cfg)
    print()
    print(report.render())
    assert report.completed == cfg.n_requests
    assert report.completion_rate == 1.0
    assert report.missed == 0
    assert report.rejected == 0
    assert sum(report.faults_injected.values()) > 0
    assert report.retries > 0


def test_zero_fault_rate_is_a_noop(run_once):
    cfg = FaultBenchConfig.for_tier()

    def compare():
        baseline = run_with_faults(cfg, plan=None)
        zero_rate = run_with_faults(cfg, FAULT_MIX.scaled(0.0))
        return baseline, zero_rate

    (base_records, base_report), (zero_records, zero_report) = (
        run_once(compare)
    )
    assert fingerprint(base_records) == fingerprint(zero_records)
    assert base_report == zero_report
    assert zero_report.faults_injected == {}
    assert zero_report.retries == 0


def test_fault_injection_deterministic(run_once):
    cfg = FaultBenchConfig.for_tier()
    records, report = run_once(run_with_faults, cfg)
    again, report2 = run_with_faults(cfg)
    assert fingerprint(records) == fingerprint(again)
    assert report == report2
    assert [r.lost_lanes for r in records] == [
        r.lost_lanes for r in again
    ]
    assert [r.degraded for r in records] == [r.degraded for r in again]


def test_fault_sweep_degrades_gracefully(run_once):
    cfg = FaultBenchConfig.for_tier()
    reports = run_once(run_fault_sweep, cfg)
    print()
    print(render_sweep(reports))
    assert set(reports) == set(cfg.fault_scales)
    for scale, report in reports.items():
        assert report.completion_rate == 1.0, (
            f"errors at fault scale {scale}"
        )
    injected = [
        sum(reports[s].faults_injected.values())
        for s in sorted(reports)
    ]
    assert injected == sorted(injected)


if __name__ == "__main__":  # pragma: no cover
    cfg = replace(FaultBenchConfig.for_tier(), budget_scale=1.0)
    _, report = run_with_faults(cfg)
    print("10% per-launch fault mix:")
    print(report.render())
    print()
    print(render_sweep(run_fault_sweep(cfg)))
