"""Fault-injection bench: resilient serving under a fault-rate sweep.

The resilience layer's acceptance claims, measured end-to-end on the
64-request mixed workload (no deadlines -- resilience, not deadline
pressure, is under test):

* at a 10% per-launch fault rate the workload completes 100% -- some
  requests degraded (lost playout batches, reduced effective budget),
  zero errors;
* at fault rate 0 the resilient service is a strict no-op -- the run
  fingerprint is identical to a service built without a fault plan;
* injection is deterministic under the plan seed: identical retry
  counts, placements and metrics across runs.

The sweep reports completion rate, p50/p95 latency, retry overhead and
injected-fault counts at each fault rate.  A second sweep measures
crash recovery: a journalled service is killed at a planned tick and
recovered, and MTTR (the recovered run's virtual time to finish the
interrupted work) is reported against the checkpoint interval --
denser checkpoints salvage more iterations and shrink MTTR.

Run standalone with ``python benchmarks/bench_faults.py`` (or
``--smoke`` for the seconds-scale CI gate); under pytest the quick
tier scales budgets down (REPRO_TIER=default restores full budgets).
"""

import sys
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path

import pytest

from repro.faults import FaultPlan
from repro.harness.common import resolve_tier
from repro.serve import (
    SearchService,
    ServiceCrash,
    WorkloadConfig,
    make_workload,
)

try:
    from benchmarks.bench_serve import fingerprint
except ImportError:  # standalone `python benchmarks/bench_faults.py`
    from bench_serve import fingerprint

#: The canonical 10% per-launch fault mix: failed launches dominate,
#: with lost results and absorbed latency spikes riding along.
FAULT_MIX = FaultPlan(
    launch_fail_rate=0.05,
    lost_result_rate=0.03,
    stall_rate=0.02,
    stall_factor=8.0,
    mpi_drop_rate=0.05,
    seed=7,
)


@dataclass(frozen=True)
class FaultBenchConfig:
    n_requests: int = 64
    #: Scale factors applied to FAULT_MIX's 10% total per-launch rate.
    fault_scales: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0)
    budget_scale: float = 1.0
    n_devices: int = 4
    max_active: int = 64
    seed: int = 2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "FaultBenchConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return FaultBenchConfig(budget_scale=0.25)
        if tier == "full":
            return FaultBenchConfig(
                budget_scale=2.0,
                fault_scales=(0.0, 0.25, 0.5, 1.0, 2.0, 4.0),
            )
        return FaultBenchConfig()


def run_with_faults(
    cfg: FaultBenchConfig, plan: FaultPlan | None = FAULT_MIX
):
    """Serve the mixed workload under ``plan`` (None = no fault layer)."""
    workload = make_workload(
        WorkloadConfig(
            n_requests=cfg.n_requests,
            seed=cfg.seed,
            budget_scale=cfg.budget_scale,
            deadline_s=None,
        )
    )
    service = SearchService(
        n_devices=cfg.n_devices,
        max_active=cfg.max_active,
        seed=cfg.seed,
        faults=plan,
    )
    service.submit_all(workload)
    records = service.run()
    return records, service.report()


def run_fault_sweep(cfg: FaultBenchConfig):
    """Fault-rate scale -> ServiceReport, over ``cfg.fault_scales``."""
    return {
        scale: run_with_faults(cfg, FAULT_MIX.scaled(scale))[1]
        for scale in cfg.fault_scales
    }


def render_sweep(reports) -> str:
    from repro.util.tables import format_series

    scales = sorted(reports)
    return format_series(
        "fault scale",
        [f"{s:g}x" for s in scales],
        {
            "completion": [
                f"{reports[s].completion_rate * 100:.0f}%"
                for s in scales
            ],
            "degraded": [str(reports[s].degraded) for s in scales],
            "p50 latency (ms)": [
                f"{reports[s].p50_latency_s * 1e3:.2f}" for s in scales
            ],
            "p95 latency (ms)": [
                f"{reports[s].p95_latency_s * 1e3:.2f}" for s in scales
            ],
            "retries": [str(reports[s].retries) for s in scales],
            "retry overhead (ms)": [
                f"{reports[s].retry_overhead_s * 1e3:.2f}"
                for s in scales
            ],
            "faults": [
                str(sum(reports[s].faults_injected.values()))
                for s in scales
            ],
        },
        title="fault-rate sweep (mixed workload, shared 4-GPU pool)",
    )


@dataclass(frozen=True)
class CrashBenchConfig:
    n_requests: int = 32
    crash_tick: int = 30
    #: Checkpoint intervals (iterations) swept for the MTTR curve.
    checkpoint_intervals: tuple[int, ...] = (5, 20, 80, 0)
    budget_scale: float = 1.0
    n_devices: int = 4
    max_active: int = 64
    seed: int = 2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "CrashBenchConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return CrashBenchConfig(
                n_requests=12, crash_tick=12, budget_scale=0.25
            )
        if tier == "full":
            return CrashBenchConfig(
                n_requests=64,
                crash_tick=60,
                checkpoint_intervals=(2, 5, 10, 20, 40, 80, 0),
                budget_scale=2.0,
            )
        return CrashBenchConfig()


@dataclass(frozen=True)
class RecoveryOutcome:
    """One crash/recover cycle, folded for the MTTR table."""

    crashed_at_s: float
    mttr_s: float
    adopted: int
    resumed: int
    restarted: int
    iterations_salvaged: int
    completed: int


def run_crash_recovery(
    cfg: CrashBenchConfig, checkpoint_every: int, journal_dir=None
) -> RecoveryOutcome:
    """Kill a journalled run at ``cfg.crash_tick``, recover, report."""
    workload = make_workload(
        WorkloadConfig(
            n_requests=cfg.n_requests,
            seed=cfg.seed,
            budget_scale=cfg.budget_scale,
            deadline_s=None,
        )
    )
    if journal_dir is None:
        with tempfile.TemporaryDirectory() as tmp:
            return run_crash_recovery(cfg, checkpoint_every, tmp)
    path = Path(journal_dir) / f"crash_{checkpoint_every}.jsonl"
    service = SearchService(
        n_devices=cfg.n_devices,
        max_active=cfg.max_active,
        seed=cfg.seed,
        journal=path,
        checkpoint_every=checkpoint_every,
        faults=FaultPlan.parse(f"crash=tick:{cfg.crash_tick}"),
    )
    service.submit_all(workload)
    try:
        service.run()
        raise AssertionError("planned crash never fired")
    except ServiceCrash:
        crashed_at_s = service.clock.now

    recovered = SearchService.recover(
        path,
        n_devices=cfg.n_devices,
        max_active=cfg.max_active,
        seed=cfg.seed,
        checkpoint_every=checkpoint_every,
    )
    recovered.run()
    report = recovered.report()
    return RecoveryOutcome(
        crashed_at_s=crashed_at_s,
        # MTTR: virtual time the recovered service needs to finish the
        # work the crash interrupted.
        mttr_s=report.elapsed_s,
        adopted=report.recovered,
        resumed=report.resumed,
        restarted=report.restarted,
        iterations_salvaged=report.recovered_iterations,
        completed=report.completed,
    )


def run_mttr_sweep(cfg: CrashBenchConfig):
    """Checkpoint interval -> RecoveryOutcome for a fixed crash."""
    return {
        every: run_crash_recovery(cfg, every)
        for every in cfg.checkpoint_intervals
    }


def render_mttr_sweep(outcomes) -> str:
    from repro.util.tables import format_series

    intervals = sorted(outcomes, key=lambda k: (k == 0, k))
    return format_series(
        "checkpoint every",
        [str(i) if i else "off" for i in intervals],
        {
            "MTTR (ms)": [
                f"{outcomes[i].mttr_s * 1e3:.2f}" for i in intervals
            ],
            "adopted": [str(outcomes[i].adopted) for i in intervals],
            "resumed": [str(outcomes[i].resumed) for i in intervals],
            "restarted": [
                str(outcomes[i].restarted) for i in intervals
            ],
            "iters salvaged": [
                str(outcomes[i].iterations_salvaged) for i in intervals
            ],
        },
        title="crash-recovery sweep (journalled service, planned kill)",
    )


# ---------------------------------------------------------------------------
# Silent-data-corruption: detection sweep + defended/undefended differential
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CorruptBenchConfig:
    """Service-level corruption sweep: detection and quarantine rates."""

    n_requests: int = 48
    corrupt_rates: tuple[float, ...] = (0.01, 0.05, 0.2)
    mode: str = "bitflip"
    budget_scale: float = 1.0
    n_devices: int = 4
    max_active: int = 64
    seed: int = 2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "CorruptBenchConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return CorruptBenchConfig(
                n_requests=24, budget_scale=0.25
            )
        if tier == "full":
            return CorruptBenchConfig(
                budget_scale=2.0,
                corrupt_rates=(0.01, 0.02, 0.05, 0.1, 0.2, 0.4),
            )
        return CorruptBenchConfig()


def run_with_corruption(
    cfg: CorruptBenchConfig, rate: float, defenses: bool = True
):
    """Serve the mixed workload under a ``corrupt=rate:mode`` plan."""
    from repro.integrity import IntegrityPolicy

    workload = make_workload(
        WorkloadConfig(
            n_requests=cfg.n_requests,
            seed=cfg.seed,
            budget_scale=cfg.budget_scale,
            deadline_s=None,
        )
    )
    service = SearchService(
        n_devices=cfg.n_devices,
        max_active=cfg.max_active,
        seed=cfg.seed,
        faults=f"corrupt={rate}:{cfg.mode},seed=7",
        integrity=None if defenses else IntegrityPolicy.disabled(),
    )
    service.submit_all(workload)
    records = service.run()
    return records, service.report()


def detection_rate(report) -> float:
    """Detected over all corruptions that actually fired."""
    fired = report.corrupt_detected + report.corrupt_escaped
    if fired == 0:
        return 1.0
    return report.corrupt_detected / fired


def run_corrupt_sweep(cfg: CorruptBenchConfig):
    """Corruption rate -> ServiceReport, over ``cfg.corrupt_rates``."""
    return {
        rate: run_with_corruption(cfg, rate)[1]
        for rate in cfg.corrupt_rates
    }


def render_corrupt_sweep(reports) -> str:
    from repro.util.tables import format_series

    rates = sorted(reports)
    return format_series(
        "corrupt rate",
        [f"{r:g}" for r in rates],
        {
            "detected": [
                str(reports[r].corrupt_detected) for r in rates
            ],
            "escaped": [
                str(reports[r].corrupt_escaped) for r in rates
            ],
            "detection": [
                f"{detection_rate(reports[r]) * 100:.1f}%"
                for r in rates
            ],
            "rejected": [
                str(reports[r].rejected_results) for r in rates
            ],
            "dropped": [
                str(reports[r].dropped_batches) for r in rates
            ],
            "quarantined": [
                str(reports[r].quarantined_trees) for r in rates
            ],
            "completion": [
                f"{reports[r].completion_rate * 100:.0f}%"
                for r in rates
            ],
        },
        title="corruption sweep (bitflip readbacks, defended service)",
    )


@dataclass(frozen=True)
class DifferentialConfig:
    """Move-match differential: corrupted search vs fault-free truth.

    For each seeded reversi position the fault-free engine's chosen
    move is the reference; the same engine searched under the
    corruption plan must agree on at least :attr:`match_floor` of
    positions *with* defenses, and measurably fewer without (phantom
    wins flow straight into the root vote when nothing audits them).
    """

    n_positions: int = 12
    plies: int = 4
    budget_s: float = 0.015
    engine: str = "block:64x4"
    game: str = "reversi"
    plan: str = "corrupt=0.05:bitflip,poison=tree:0,seed=7"
    #: Win-ratio vote: the paper's alternative final-move rule, and
    #: the one silent phantom wins can actually swing.
    final_policy: str = "max_ratio"
    match_floor: float = 0.9
    seed: int = 2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "DifferentialConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return DifferentialConfig(n_positions=6, budget_s=0.01)
        if tier == "full":
            return DifferentialConfig(n_positions=24)
        return DifferentialConfig()


def _seeded_position(game, cfg: DifferentialConfig, i: int):
    """Deterministic early-game position: ``plies`` pseudo-random
    moves from the initial state (counter-hash indexed, no RNG
    object)."""
    from repro.util.seeding import derive_seed

    state = game.initial_state()
    for ply in range(cfg.plies):
        moves = game.legal_moves(state)
        if not moves or game.is_terminal(state):
            break
        pick = derive_seed(cfg.seed, "diffpos", i, ply) % len(moves)
        state = game.apply(state, moves[pick])
    return state


def _search_move(
    game, cfg: DifferentialConfig, i: int, state, plan, defenses
):
    from repro.core import make_engine
    from repro.faults import FaultInjector
    from repro.integrity import IntegrityPolicy
    from repro.util.clock import Clock

    kwargs = {}
    if plan is not None:
        kwargs["injector"] = FaultInjector(FaultPlan.parse(plan))
        if not defenses:
            kwargs["integrity"] = IntegrityPolicy.disabled()
    engine = make_engine(
        cfg.engine,
        game,
        seed=derive_seed_for_position(cfg.seed, i),
        clock=Clock(),
        final_policy=cfg.final_policy,
        **kwargs,
    )
    return engine.search(state, cfg.budget_s)


def derive_seed_for_position(seed: int, i: int) -> int:
    from repro.util.seeding import derive_seed

    return derive_seed(seed, "diffeng", i)


@dataclass(frozen=True)
class DifferentialOutcome:
    matches_defended: int
    matches_undefended: int
    n_positions: int
    quarantines: int

    @property
    def defended_rate(self) -> float:
        return self.matches_defended / self.n_positions

    @property
    def undefended_rate(self) -> float:
        return self.matches_undefended / self.n_positions


def run_move_differential(
    cfg: DifferentialConfig,
) -> DifferentialOutcome:
    """Fault-free reference vs corrupted search, with and without the
    integrity defenses, over the seeded positions."""
    from repro.games import make_game

    game = make_game(cfg.game)
    defended = undefended = quarantines = 0
    for i in range(cfg.n_positions):
        state = _seeded_position(game, cfg, i)
        reference = _search_move(game, cfg, i, state, None, True).move
        shielded = _search_move(game, cfg, i, state, cfg.plan, True)
        exposed = _search_move(game, cfg, i, state, cfg.plan, False)
        defended += shielded.move == reference
        undefended += exposed.move == reference
        quarantines += len(
            shielded.integrity.get("quarantined_trees", ())
        )
    return DifferentialOutcome(
        matches_defended=defended,
        matches_undefended=undefended,
        n_positions=cfg.n_positions,
        quarantines=quarantines,
    )


def render_differential(
    cfg: DifferentialConfig, outcome: DifferentialOutcome
) -> str:
    from repro.util.tables import format_series

    return format_series(
        "search",
        ["defended", "undefended"],
        {
            "move matches": [
                f"{outcome.matches_defended}/{outcome.n_positions}",
                f"{outcome.matches_undefended}/{outcome.n_positions}",
            ],
            "match rate": [
                f"{outcome.defended_rate * 100:.0f}%",
                f"{outcome.undefended_rate * 100:.0f}%",
            ],
        },
        title=(
            f"move-match differential ({cfg.engine} {cfg.game}, "
            f"{cfg.plan})"
        ),
    )


def test_ten_percent_faults_complete_without_errors(run_once):
    cfg = FaultBenchConfig.for_tier()
    _, report = run_once(run_with_faults, cfg)
    print()
    print(report.render())
    assert report.completed == cfg.n_requests
    assert report.completion_rate == 1.0
    assert report.missed == 0
    assert report.rejected == 0
    assert sum(report.faults_injected.values()) > 0
    assert report.retries > 0


def test_zero_fault_rate_is_a_noop(run_once):
    cfg = FaultBenchConfig.for_tier()

    def compare():
        baseline = run_with_faults(cfg, plan=None)
        zero_rate = run_with_faults(cfg, FAULT_MIX.scaled(0.0))
        return baseline, zero_rate

    (base_records, base_report), (zero_records, zero_report) = (
        run_once(compare)
    )
    assert fingerprint(base_records) == fingerprint(zero_records)
    assert base_report == zero_report
    assert zero_report.faults_injected == {}
    assert zero_report.retries == 0


def test_fault_injection_deterministic(run_once):
    cfg = FaultBenchConfig.for_tier()
    records, report = run_once(run_with_faults, cfg)
    again, report2 = run_with_faults(cfg)
    assert fingerprint(records) == fingerprint(again)
    assert report == report2
    assert [r.lost_lanes for r in records] == [
        r.lost_lanes for r in again
    ]
    assert [r.degraded for r in records] == [r.degraded for r in again]


def test_fault_sweep_degrades_gracefully(run_once):
    cfg = FaultBenchConfig.for_tier()
    reports = run_once(run_fault_sweep, cfg)
    print()
    print(render_sweep(reports))
    assert set(reports) == set(cfg.fault_scales)
    for scale, report in reports.items():
        assert report.completion_rate == 1.0, (
            f"errors at fault scale {scale}"
        )
    injected = [
        sum(reports[s].faults_injected.values())
        for s in sorted(reports)
    ]
    assert injected == sorted(injected)


@pytest.mark.integrity
def test_corrupt_bitflips_always_detected(run_once):
    cfg = CorruptBenchConfig.for_tier()
    reports = run_once(run_corrupt_sweep, cfg)
    print()
    print(render_corrupt_sweep(reports))
    for rate, report in reports.items():
        assert report.completion_rate == 1.0, (
            f"errors at corrupt rate {rate}"
        )
        assert detection_rate(report) >= 0.99, (
            f"detection below gate at corrupt rate {rate}"
        )
    assert reports[0.05].corrupt_detected > 0


@pytest.mark.integrity
def test_defenses_off_lets_corruption_escape(run_once):
    cfg = CorruptBenchConfig.for_tier()
    _, report = run_once(
        run_with_corruption, cfg, 0.2, defenses=False
    )
    assert report.corrupt_detected == 0
    assert report.rejected_results == 0
    assert report.corrupt_escaped > 0


@pytest.mark.integrity
def test_move_differential_defends_the_vote(run_once):
    cfg = DifferentialConfig.for_tier()
    outcome = run_once(run_move_differential, cfg)
    print()
    print(render_differential(cfg, outcome))
    assert outcome.defended_rate >= cfg.match_floor
    assert outcome.matches_undefended < outcome.matches_defended
    assert outcome.quarantines > 0


def test_crash_recovery_completes_every_request(run_once, tmp_path):
    cfg = CrashBenchConfig.for_tier()
    outcome = run_once(
        run_crash_recovery, cfg, 5, journal_dir=tmp_path
    )
    assert outcome.completed == cfg.n_requests
    assert outcome.adopted + outcome.resumed + outcome.restarted == (
        cfg.n_requests
    )
    assert outcome.resumed > 0
    assert outcome.iterations_salvaged > 0


def test_denser_checkpoints_salvage_no_less_work(run_once):
    cfg = CrashBenchConfig.for_tier()
    outcomes = run_once(run_mttr_sweep, cfg)
    print()
    print(render_mttr_sweep(outcomes))
    for outcome in outcomes.values():
        assert outcome.completed == cfg.n_requests
    # With checkpointing off nothing is salvaged; the densest interval
    # salvages at least as much as any sparser one.
    assert outcomes[0].iterations_salvaged == 0
    assert outcomes[0].resumed == 0
    densest = min(i for i in outcomes if i)
    assert outcomes[densest].iterations_salvaged == max(
        o.iterations_salvaged for o in outcomes.values()
    )


def _main(argv) -> int:  # pragma: no cover
    smoke = "--smoke" in argv
    if smoke:
        fault_cfg = FaultBenchConfig.for_tier("quick")
        crash_cfg = CrashBenchConfig.for_tier("quick")
        corrupt_cfg = CorruptBenchConfig.for_tier("quick")
        diff_cfg = DifferentialConfig.for_tier("quick")
    else:
        fault_cfg = replace(
            FaultBenchConfig.for_tier(), budget_scale=1.0
        )
        crash_cfg = CrashBenchConfig.for_tier()
        corrupt_cfg = CorruptBenchConfig.for_tier()
        diff_cfg = DifferentialConfig.for_tier()
    _, report = run_with_faults(fault_cfg)
    print("10% per-launch fault mix:")
    print(report.render())
    print()
    print(render_sweep(run_fault_sweep(fault_cfg)))
    print()
    outcomes = run_mttr_sweep(crash_cfg)
    print(render_mttr_sweep(outcomes))
    incomplete = [
        every
        for every, outcome in outcomes.items()
        if outcome.completed != crash_cfg.n_requests
    ]
    if incomplete:
        print(f"FAIL: requests lost at intervals {incomplete}")
        return 1

    print()
    corrupt_reports = run_corrupt_sweep(corrupt_cfg)
    print(render_corrupt_sweep(corrupt_reports))
    gate = detection_rate(corrupt_reports[0.05])
    if gate < 0.99:
        print(
            f"FAIL: detection {gate:.3f} < 0.99 at corrupt=0.05:bitflip"
        )
        return 1
    print()
    differential = run_move_differential(diff_cfg)
    print(render_differential(diff_cfg, differential))
    if differential.defended_rate < diff_cfg.match_floor:
        print(
            f"FAIL: defended move match {differential.defended_rate:.2f}"
            f" below the {diff_cfg.match_floor:.0%} floor"
        )
        return 1
    if smoke:
        print(
            "smoke OK: crash recovery completed every request; "
            f"corruption detection {gate:.1%} at corrupt=0.05:bitflip"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_main(sys.argv[1:]))
