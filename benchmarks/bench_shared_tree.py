"""Shared-tree shootout bench: WU-UCT / pipeline / baselines strength.

Pytest runs the tier-scaled shootout and checks structure (quick tier
has too few games for statistical claims; richer tiers additionally
require WU-UCT to hold its own against virtual loss at the largest
worker count).

Standalone ``python benchmarks/bench_shared_tree.py --smoke`` is the
seconds-scale CI gate: a wuct-vs-vloss head-to-head at N=16 on
connect4 where WU-UCT's win ratio must stay within tolerance of -- or
beat -- virtual loss.
"""

import sys

from repro.harness.shared_tree import ShootoutConfig, run_shootout

#: The smoke gate's slack: wuct may trail vloss by at most this much.
SMOKE_TOLERANCE = 0.25


def test_shared_tree_shootout(run_once):
    cfg = ShootoutConfig.for_tier()
    result = run_once(run_shootout, cfg)
    print()
    print(result.render())

    for game_name in cfg.games:
        for label in cfg.contenders:
            ratios = result.win_ratio[(game_name, label)]
            assert len(ratios) == len(cfg.worker_counts)
            for ratio in ratios:
                assert 0.0 <= ratio <= 1.0

    if cfg.games_per_point >= 8 and 16 in cfg.worker_counts:
        # With enough games WU-UCT's headline claim must show: at the
        # large worker count it matches or beats virtual loss on at
        # least one game.
        assert any(
            result.ratio(g, "tree@wuct", 16)
            >= result.ratio(g, "tree@vloss", 16)
            for g in cfg.games
        )


def _main(argv) -> int:
    smoke = "--smoke" in argv
    cfg = ShootoutConfig.smoke() if smoke else ShootoutConfig.for_tier()
    result = run_shootout(cfg)
    print(result.render())

    if smoke:
        game = cfg.games[0]
        n = cfg.worker_counts[0]
        wuct = result.ratio(game, "tree@wuct", n)
        vloss = result.ratio(game, "tree@vloss", n)
        if wuct < vloss - SMOKE_TOLERANCE:
            print(
                f"FAIL: wuct win ratio {wuct:.2f} trails vloss "
                f"{vloss:.2f} by more than {SMOKE_TOLERANCE} at "
                f"N={n} on {game}"
            )
            return 1
        print(
            f"smoke OK: wuct {wuct:.2f} vs vloss {vloss:.2f} at "
            f"N={n} on {game} (tolerance {SMOKE_TOLERANCE})"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_main(sys.argv[1:]))
