"""Figure 6 bench: win ratio vs threads against 1-core sequential MCTS.

Shape assertions are tier-aware: the quick tier has too few games for
statistical claims, so it only checks structure and that GPU schemes
are not losing badly at the larger grid; richer tiers check the rise
with thread count.
"""

from repro.harness.fig6_winratio import Fig6Config, run_fig6


def test_fig6_winratio(run_once):
    cfg = Fig6Config.for_tier()
    result = run_once(run_fig6, cfg)
    print()
    print(result.render())

    for label, ratios in result.win_ratio.items():
        assert len(ratios) == len(cfg.thread_counts)
        for ratio in ratios:
            assert 0.0 <= ratio <= 1.0

    if cfg.games_per_point >= 6:
        # With enough games the paper's trend must hold: the largest
        # grid beats the smallest for every scheme, and the biggest
        # block-parallel point is clearly above 50%.
        for label, ratios in result.win_ratio.items():
            assert ratios[-1] >= ratios[0] - 0.15
        block_labels = [
            k for k in result.win_ratio if k.startswith("block")
        ]
        assert any(
            result.win_ratio[k][-1] > 0.5 for k in block_labels
        )
