"""Figure 9 bench: multi-GPU MPI scaling (throughput + strength).

Throughput must scale near-linearly with ranks (left panel) at every
tier.  The strength trend (right panel: more GPUs at least as good)
is asserted with a noise margin when enough games are played.
"""

from repro.harness.fig9_multigpu import Fig9Config, run_fig9


def test_fig9_multigpu(run_once):
    cfg = Fig9Config.for_tier()
    result = run_once(run_fig9, cfg)
    print()
    print(result.render())

    ranks = list(cfg.gpu_counts)
    first, last = ranks[0], ranks[-1]
    ideal = last / first
    speedup = result.throughput[last] / result.throughput[first]
    assert speedup > 0.7 * ideal  # near-linear (paper left panel)

    if cfg.games_per_point >= 4:
        assert (
            result.point_difference[last]
            >= result.point_difference[first] - 6.0
        )
