"""Figure 8 bench: hybrid CPU/GPU vs GPU-only (points and depth).

The load-bearing paper claim -- the hybrid's overlapped CPU iterations
deepen the trees -- must hold at every tier; the points advantage needs
more games, so it is asserted only at richer tiers.
"""

from repro.harness.fig8_hybrid import Fig8Config, run_fig8


def test_fig8_hybrid(run_once):
    cfg = Fig8Config.for_tier()
    result = run_once(run_fig8, cfg)
    print()
    print(result.render())

    # Depth: hybrid >= GPU-only on average over the game (Fig 8 right).
    assert (
        result.depth["GPU + CPU"].mean() >= result.depth["GPU"].mean()
    )

    if cfg.games_per_series >= 6:
        # Points: hybrid at least matches GPU-only in the endgame
        # (Fig 8 left), within a small noise margin.
        last_quarter = slice(3 * cfg.steps // 4, cfg.steps)
        assert (
            result.points["GPU + CPU"][last_quarter].mean()
            >= result.points["GPU"][last_quarter].mean() - 4.0
        )
