"""Generalization bench: GPU schemes on non-Reversi domains."""

from repro.harness.generalization import (
    GeneralizationConfig,
    run_generalization,
)


def test_generalization(run_once):
    cfg = GeneralizationConfig.for_tier()
    result = run_once(run_generalization, cfg)
    print()
    print(result.render())
    for ratio in result.win_ratio.values():
        assert 0.0 <= ratio <= 1.0
    if cfg.games_per_point >= 6:
        # With enough games the GPU schemes must not lose to the
        # 1-core baseline overall (the transfer claim).
        mean_ratio = sum(result.win_ratio.values()) / len(
            result.win_ratio
        )
        assert mean_ratio >= 0.45
