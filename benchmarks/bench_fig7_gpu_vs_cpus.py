"""Figure 7 bench: point difference per game step, CPUs vs one GPU.

Regenerates the paper's central comparison.  At the quick tier only
structure is asserted; with >= 4 games per point the GPU must match or
beat the median CPU configuration on final score, and more CPU cores
must not make the subject *weaker* across the sweep extremes.
"""

import numpy as np

from repro.harness.fig7_gpu_vs_cpus import Fig7Config, run_fig7


def test_fig7_gpu_vs_cpus(run_once):
    cfg = Fig7Config.for_tier()
    result = run_once(run_fig7, cfg)
    print()
    print(result.render())

    assert "1 GPU" in result.series
    for label, series in result.series.items():
        assert series.shape == (cfg.steps,)
        assert np.all(np.abs(series) <= 64)

    finals = result.final_scores()
    if cfg.games_per_point >= 4:
        gpu = finals["1 GPU"]
        cpu_finals = sorted(
            v for k, v in finals.items() if k != "1 GPU"
        )
        median_cpu = cpu_finals[len(cpu_finals) // 2]
        assert gpu >= median_cpu - 4.0  # GPU at/above the CPU pack
