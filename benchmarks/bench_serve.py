"""Serving bench: batched multi-tenant search vs back-to-back searches.

The tentpole claim of the serving layer, measured end-to-end: a
64-request mixed workload (three games, six engine specs, varied
budgets) served concurrently over a shared 4-GPU pool must complete

* deterministically -- the same seed produces identical per-request
  results across runs,
* with zero deadline misses at the default deadline, and
* at >= 2x the requests/s of the same 64 searches run back-to-back on
  a single device.

A load sweep (offered loads 1..256) reports requests/s and p50/p95
latency at each point.  Run standalone with
``python benchmarks/bench_serve.py``; under pytest the quick tier
scales budgets down (REPRO_TIER=default restores the full budgets).

The cluster tier (``--cluster``, CI gate ``--cluster --smoke``)
measures the sharded stack from docs/cluster.md: shard-count
throughput scaling on independent traffic (>= 3x at 4 shards), the
result cache's p50 collapse on Zipf-skewed duplicate traffic (hit
rate > 0, measured collapse recorded in
``benchmarks/REPORT_cluster.md``), and a mid-run shard kill that must
recover exactly-once through the journal.

The storm tier (``--storm``, CI gate ``--storm --smoke``) measures
the overload-survival layer from docs/overload.md: a 4x flash crowd
over a 2-device node must hold interactive SLO attainment >= 95%
with the degradation ladder and autoscaler engaged, versus < 50%
undefended; seeded storms must replay bit-identically; a cluster
storm with a mid-storm shard crash must still serve every request
exactly once.  Measured numbers are recorded in
``benchmarks/REPORT_overload.md``.

The retry-storm tier (``--retry-storm``, CI gate ``--retry-storm
--smoke``) measures the closed-loop client layer from
repro.serve.clients: the same seeded flash crowd with retrying
clients must leave the *undefended* node metastably trapped (offered
load stays above goodput long after the crowd clears) while the
*defended* stack -- degradation ladder + server-side retry budget +
per-client circuit breakers + adaptive throttling -- recovers
post-crowd interactive attainment to >= 95%; both runs replay
bit-identically, and a hedged cluster storm with a mid-storm shard
crash still serves every request exactly once.  Measured numbers are
recorded in ``benchmarks/REPORT_retrystorm.md``.
"""

import sys
import tempfile
from dataclasses import dataclass, replace

from repro.harness.common import resolve_tier
from repro.serve import (
    ClusterRouter,
    ClusterStormConfig,
    FlashCrowd,
    SearchService,
    StormConfig,
    TraceConfig,
    WorkloadConfig,
    make_workload,
    post_crowd_attainment,
    run_cluster_storm,
    run_storm,
)


@dataclass(frozen=True)
class ServeBenchConfig:
    n_requests: int = 64
    loads: tuple[int, ...] = (1, 4, 16, 64, 256)
    budget_scale: float = 1.0
    n_devices: int = 4
    max_active: int = 64
    deadline_s: float = 2.0
    seed: int = 2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "ServeBenchConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return ServeBenchConfig(
                budget_scale=0.25, loads=(1, 16, 64, 256)
            )
        if tier == "full":
            return ServeBenchConfig(
                loads=(1, 4, 16, 64, 128, 256), budget_scale=2.0
            )
        return ServeBenchConfig()


@dataclass(frozen=True)
class ClusterBenchConfig:
    """Shape of the sharded-cluster benchmark runs.

    Shards are deliberately *contended* (2 devices, 4 active slots
    each): sharding pays off when one node saturates, and a virtual
    node with a huge admission window never does.
    """

    n_requests: int = 64
    shard_counts: tuple[int, ...] = (1, 2, 4, 8)
    budget_scale: float = 0.25
    n_devices: int = 2
    max_active: int = 4
    seed: int = 2011
    #: Independent traffic: candidate positions per game (several per
    #: request, so duplicates -- and cache hits -- are rare).
    position_pool: int = 256
    #: Zipf-skewed traffic: a small hot pool under this exponent.
    skew: float = 1.1
    skew_pool: int = 12

    @staticmethod
    def for_tier(tier: str | None = None) -> "ClusterBenchConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            # Keep the full 64-request workload and position pool:
            # the scaling and cache-collapse effects need enough
            # offered load (and shard balance) to show; trim the
            # sweep to its gated endpoints instead.
            return ClusterBenchConfig(shard_counts=(1, 4))
        if tier == "full":
            return ClusterBenchConfig(
                n_requests=128,
                budget_scale=0.5,
                position_pool=512,
            )
        return ClusterBenchConfig()


def run_cluster(
    cfg: ClusterBenchConfig,
    n_shards: int,
    cache=None,
    position_skew: float = 0.0,
    position_pool: int | None = None,
    journal_dir=None,
    shard_overrides=None,
):
    """One cluster run over a generated workload."""
    workload = make_workload(
        WorkloadConfig(
            n_requests=cfg.n_requests,
            seed=cfg.seed,
            budget_scale=cfg.budget_scale,
            deadline_s=None,
            position_skew=position_skew,
            position_pool=(
                cfg.position_pool
                if position_pool is None
                else position_pool
            ),
        )
    )
    cluster = ClusterRouter(
        n_shards=n_shards,
        seed=cfg.seed,
        cache=cache,
        journal_dir=journal_dir,
        shard_overrides=shard_overrides,
        n_devices=cfg.n_devices,
        max_active=cfg.max_active,
        enforce_deadlines=False,
    )
    cluster.submit_all(workload)
    records = cluster.run()
    return records, cluster.report()


def run_scaling_sweep(cfg: ClusterBenchConfig):
    """Shard count -> ClusterReport on independent traffic."""
    return {
        n: run_cluster(cfg, n)[1] for n in cfg.shard_counts
    }


def run_skew_comparison(cfg: ClusterBenchConfig):
    """(cache-off report, cache-on report) on Zipf-skewed traffic."""
    off = run_cluster(
        cfg,
        4,
        cache=None,
        position_skew=cfg.skew,
        position_pool=cfg.skew_pool,
    )[1]
    on = run_cluster(
        cfg,
        4,
        cache=True,
        position_skew=cfg.skew,
        position_pool=cfg.skew_pool,
    )[1]
    return off, on


def run_shard_kill(cfg: ClusterBenchConfig):
    """Kill shard 0 mid-run; the journal must recover exactly-once."""
    with tempfile.TemporaryDirectory() as journal_dir:
        records, report = run_cluster(
            cfg,
            4,
            journal_dir=journal_dir,
            shard_overrides={0: {"faults": "crash=tick:4"}},
        )
    rids = [r.request.request_id for r in records]
    assert len(rids) == len(set(rids)), "request served twice"
    return records, report


def render_scaling_sweep(reports) -> str:
    from repro.util.tables import format_series

    counts = sorted(reports)
    base = reports[counts[0]].requests_per_s
    return format_series(
        "shards",
        counts,
        {
            "requests/s": [
                f"{reports[n].requests_per_s:.1f}" for n in counts
            ],
            "scaling": [
                f"{reports[n].requests_per_s / base:.2f}x"
                for n in counts
            ],
            "elapsed (s)": [
                f"{reports[n].elapsed_s:.4f}" for n in counts
            ],
            "p50 latency (ms)": [
                f"{reports[n].p50_latency_s * 1e3:.2f}"
                for n in counts
            ],
        },
        title=(
            "cluster throughput scaling "
            "(independent traffic, contended shards)"
        ),
    )


def render_skew_comparison(off, on) -> str:
    from repro.util.tables import format_series

    return format_series(
        "metric",
        [
            "p50 latency (ms)",
            "p95 latency (ms)",
            "requests/s",
            "cache hit rate",
        ],
        {
            "cache off": [
                f"{off.p50_latency_s * 1e3:.2f}",
                f"{off.p95_latency_s * 1e3:.2f}",
                f"{off.requests_per_s:.1f}",
                "-",
            ],
            "cache on": [
                f"{on.p50_latency_s * 1e3:.2f}",
                f"{on.p95_latency_s * 1e3:.2f}",
                f"{on.requests_per_s:.1f}",
                f"{on.cache_hit_rate * 100:.0f}%",
            ],
        },
        title=(
            "Zobrist result cache on Zipf-skewed traffic "
            "(4 shards)"
        ),
    )


@dataclass(frozen=True)
class StormBenchConfig:
    """Operating point for the overload-survival gate.

    Calibrated so the flash crowd peaks ~4x beyond the 2-device
    sustainable rate: undefended, interactive attainment collapses
    below 50% as the queue backs up through every deadline;
    defended (admission ladder + autoscaler), interactive must hold
    >= 95% while standard/batch absorb the shedding.  The gate
    thresholds are tied to this exact operating point, so tiers
    share it.
    """

    base_rate: float = 450.0
    horizon_s: float = 0.6
    crowd_start_s: float = 0.1
    crowd_duration_s: float = 0.4
    crowd: float = 4.0
    budget_scale: float = 0.25
    n_devices: int = 2
    max_active: int = 32
    autoscale_max: int = 8
    scaleup_lag_s: float = 0.03
    seed: int = 11

    def trace(self, **overrides) -> TraceConfig:
        horizon = overrides.pop("horizon_s", self.horizon_s)
        base_rate = overrides.pop("base_rate", self.base_rate)
        return TraceConfig(
            base_rate=base_rate,
            horizon_s=horizon,
            seed=self.seed,
            components=(
                FlashCrowd(
                    start_s=self.crowd_start_s,
                    duration_s=self.crowd_duration_s,
                    multiplier=self.crowd,
                ),
            ),
            class_deadline_s=(
                ("interactive", 0.1),
                ("standard", 0.3),
                ("batch", 1.0),
            ),
            workload=WorkloadConfig(
                seed=self.seed,
                engines=("sequential", "root:2"),
                budget_scale=self.budget_scale,
            ),
            **overrides,
        )

    @staticmethod
    def for_tier(tier: str | None = None) -> "StormBenchConfig":
        resolve_tier(tier)
        return StormBenchConfig()


def run_storm_defended(cfg: StormBenchConfig):
    """The full defense stack: ladder + hysteresis + autoscaler."""
    return run_storm(
        StormConfig(
            trace=cfg.trace(),
            n_devices=cfg.n_devices,
            max_active=cfg.max_active,
            seed=cfg.seed,
            overload=True,
            autoscale={
                "max_devices": cfg.autoscale_max,
                "scaleup_lag_s": cfg.scaleup_lag_s,
            },
        )
    )


def run_storm_undefended(cfg: StormBenchConfig):
    """Same trace, no admission control, fixed fleet."""
    return run_storm(
        StormConfig(
            trace=cfg.trace(),
            n_devices=cfg.n_devices,
            max_active=cfg.max_active,
            seed=cfg.seed,
            overload=None,
            autoscale=None,
        )
    )


def storm_fingerprint(outcome):
    """Bit-level identity of one storm: every arrival and every
    per-request terminal outcome."""
    arrivals = [
        (r.request_id, r.arrival_s, r.priority, r.deadline_s,
         r.game, r.engine, r.budget_s, r.seed)
        for r in outcome.requests
    ]
    outcomes = [
        (
            rec.request.request_id,
            rec.status,
            rec.outcome,
            rec.degrade_level,
            rec.latency_s,
            None if rec.result is None else rec.result.move,
            None if rec.result is None else rec.result.simulations,
        )
        for rec in outcome.records
    ]
    return arrivals, outcomes


def run_storm_cluster_kill(cfg: StormBenchConfig):
    """A cluster storm whose second epoch kills shard 0 mid-crowd;
    the per-epoch journals must recover it exactly-once."""
    trace = cfg.trace(base_rate=150.0, horizon_s=0.3)
    with tempfile.TemporaryDirectory() as journal_dir:
        return run_cluster_storm(
            ClusterStormConfig(
                trace=trace,
                epochs=2,
                initial_shards=2,
                seed=cfg.seed,
                journal_dir=journal_dir,
                crash_epoch=1,
                service_kwargs=(
                    ("n_devices", cfg.n_devices),
                    ("max_active", 8),
                    ("overload", True),
                ),
            )
        )


def render_storm_comparison(defended, undefended) -> str:
    from repro.util.tables import format_series

    classes = ["interactive", "standard", "batch"]

    def column(out):
        cells = []
        for cls in classes:
            stats = out.per_class.get(cls)
            if stats is None:
                cells.append("-")
                continue
            cells.append(
                f"{stats.attainment * 100:5.1f}%  "
                f"({stats.met}/{stats.degraded}/{stats.shed}/"
                f"{stats.rejected}/{stats.missed})"
            )
        cells.append(str(out.report.peak_devices or "-"))
        cells.append(str(out.report.shed))
        return cells

    return format_series(
        "class: attainment (met/degr/shed/rej/miss)",
        classes + ["peak devices", "total shed"],
        {
            "defended": column(defended),
            "undefended": column(undefended),
        },
        title=(
            "overload storm: 4x flash crowd on a 2-device node "
            "(docs/overload.md)"
        ),
    )


@dataclass(frozen=True)
class RetryStormBenchConfig:
    """Operating point for the retry-storm (metastability) gate.

    Calibrated so the *base* load is comfortably sustainable (all
    classes at 100% attainment with no crowd -- the healthy
    equilibrium exists) while a 10x flash crowd plus aggressive
    client retries tips the undefended node into the bad
    equilibrium: queue wait blows every deadline, each miss mints a
    retry, and offered load stays pinned above goodput long after
    the crowd has cleared.  Deadlines sit just above the healthy
    p99, so the trap is queue delay -- not an unmeetable SLO.
    """

    base_rate: float = 150.0
    horizon_s: float = 1.0
    crowd_start_s: float = 0.1
    crowd_duration_s: float = 0.3
    crowd: float = 10.0
    budget_scale: float = 0.25
    n_devices: int = 2
    max_active: int = 16
    max_queue: int = 64
    #: Detector grace after crowd end before the post-crowd window.
    settle_s: float = 0.1
    seed: int = 11

    def clear_s(self) -> float:
        return self.crowd_start_s + self.crowd_duration_s

    def trace(self, crowd: bool = True) -> TraceConfig:
        components = (
            (
                FlashCrowd(
                    start_s=self.crowd_start_s,
                    duration_s=self.crowd_duration_s,
                    multiplier=self.crowd,
                ),
            )
            if crowd
            else ()
        )
        return TraceConfig(
            base_rate=self.base_rate,
            horizon_s=self.horizon_s,
            seed=self.seed,
            components=components,
            class_deadline_s=(
                ("interactive", 0.1),
                ("standard", 0.2),
                ("batch", 0.4),
            ),
            workload=WorkloadConfig(
                seed=self.seed,
                engines=("sequential", "root:2"),
                budget_scale=self.budget_scale,
            ),
        )

    def retry_policy(self) -> dict:
        """Aggressive-but-bounded client retries: short exponential
        backoff, 10 attempts, multi-second patience -- enough
        feedback gain to sustain the trap."""
        return dict(
            kind="exponential",
            base_s=0.02,
            cap_s=0.16,
            jitter=0.3,
            max_attempts=10,
            give_up_s=(
                ("interactive", 2.0),
                ("standard", 3.0),
                ("batch", 4.0),
            ),
        )

    def clients(self, defended: bool) -> dict:
        clients = dict(retry=self.retry_policy(), seed=self.seed)
        if defended:
            clients["breaker"] = dict(
                failure_threshold=5, reset_timeout_s=0.1
            )
            clients["throttle"] = dict(k=1.5, window=64)
        return clients

    def detector(self) -> dict:
        return dict(
            bin_s=0.05,
            settle_s=self.settle_s,
            goodput_frac=0.5,
            min_offered_rate=40.0,
        )

    def storm_config(
        self, defended: bool, crowd: bool = True
    ) -> StormConfig:
        return StormConfig(
            trace=self.trace(crowd=crowd),
            n_devices=self.n_devices,
            max_active=self.max_active,
            max_queue=self.max_queue,
            seed=self.seed,
            # The ladder is tuned to *let go* quickly once pressure
            # clears (small window, early release) -- a sticky ladder
            # is itself a metastable state.
            overload=(
                dict(
                    max_level=3,
                    window=16,
                    release=0.6,
                    deescalate_after=3,
                )
                if defended
                else None
            ),
            clients=self.clients(defended),
            retry_budget=(
                dict(fill_per_first_try=0.1, cap=10.0, initial=2.0)
                if defended
                else None
            ),
            detector=self.detector(),
        )

    @staticmethod
    def for_tier(tier: str | None = None) -> "RetryStormBenchConfig":
        resolve_tier(tier)
        return RetryStormBenchConfig()


def run_retry_storm_defended(cfg: RetryStormBenchConfig):
    """Closed-loop crowd vs the full defense stack: degradation
    ladder + retry budget + circuit breakers + adaptive throttle."""
    return run_storm(cfg.storm_config(defended=True))


def run_retry_storm_undefended(cfg: RetryStormBenchConfig):
    """Same trace and clients, no admission control or defenses."""
    return run_storm(cfg.storm_config(defended=False))


def run_retry_storm_healthy(cfg: RetryStormBenchConfig):
    """The base load alone (no crowd, no defenses): must be healthy,
    proving the trap is metastability and not plain overload."""
    return run_storm(cfg.storm_config(defended=False, crowd=False))


def run_retry_storm_hedged_kill(cfg: RetryStormBenchConfig):
    """A hedged cluster storm whose second epoch kills shard 0
    mid-crowd: hedged backups and journal recovery must compose --
    every request served exactly once, all leases drained."""
    trace = cfg.trace()
    with tempfile.TemporaryDirectory() as journal_dir:
        return run_cluster_storm(
            ClusterStormConfig(
                trace=trace,
                epochs=2,
                initial_shards=2,
                seed=cfg.seed,
                journal_dir=journal_dir,
                crash_epoch=1,
                hedge=dict(trigger_percentile=90.0),
                service_kwargs=(
                    ("n_devices", cfg.n_devices),
                    ("max_active", 8),
                    ("overload", True),
                ),
            )
        )


def render_retry_storm(healthy, undefended, defended, clear_s) -> str:
    from repro.util.tables import format_series

    def column(out):
        rep = out.report
        verdict = out.metastability
        pc = post_crowd_attainment(out.records, clear_s)
        return [
            str(rep.first_tries),
            str(rep.retries_offered),
            str(rep.completed),
            str(rep.missed),
            str(rep.rejected),
            str(rep.shed),
            f"{out.attainment('interactive') * 100:.0f}%",
            f"{pc * 100:.0f}%",
            "TRAPPED" if verdict.trapped else "recovered",
            str(verdict.trapped_bins),
            f"{verdict.goodput_ratio:.2f}",
            str(rep.breaker_opens),
            str(rep.budget_rejected),
            str(rep.client_suppressed_breaker),
            str(rep.client_suppressed_throttle),
        ]

    return format_series(
        "metric",
        [
            "first tries",
            "retries offered",
            "completed",
            "missed",
            "rejected",
            "shed",
            "interactive SLO (all)",
            "interactive SLO (post-crowd)",
            "metastability verdict",
            "trapped bins (consecutive)",
            "post-crowd goodput/offered",
            "breaker opens",
            "budget-rejected retries",
            "suppressed (breaker)",
            "suppressed (throttle)",
        ],
        {
            "healthy (no crowd)": column(healthy),
            "undefended": column(undefended),
            "defended": column(defended),
        },
        title=(
            "retry storm: 10x flash crowd with closed-loop clients "
            "(repro.serve.clients)"
        ),
    )


def run_concurrent(cfg: ServeBenchConfig, n_requests: int | None = None):
    """Serve ``n_requests`` concurrently over the shared pool."""
    workload = make_workload(
        WorkloadConfig(
            n_requests=n_requests or cfg.n_requests,
            seed=cfg.seed,
            budget_scale=cfg.budget_scale,
            deadline_s=cfg.deadline_s,
        )
    )
    service = SearchService(
        n_devices=cfg.n_devices,
        max_active=cfg.max_active,
        seed=cfg.seed,
    )
    service.submit_all(workload)
    records = service.run()
    return records, service.report()


def run_serial_baseline(cfg: ServeBenchConfig):
    """The same workload, one request at a time on one device."""
    workload = make_workload(
        WorkloadConfig(
            n_requests=cfg.n_requests,
            seed=cfg.seed,
            budget_scale=cfg.budget_scale,
            deadline_s=None,
        )
    )
    service = SearchService(
        n_devices=1,
        max_active=1,
        seed=cfg.seed,
        enforce_deadlines=False,
    )
    service.submit_all(workload)
    records = service.run()
    return records, service.report()


def fingerprint(records):
    """Per-request identity of a run, for determinism checks."""
    return [
        (
            r.request.request_id,
            r.status,
            r.latency_s,
            None if r.result is None else r.result.move,
            None if r.result is None else r.result.simulations,
        )
        for r in records
    ]


def run_load_sweep(cfg: ServeBenchConfig):
    """Offered load -> ServiceReport, over ``cfg.loads``."""
    return {
        load: run_concurrent(cfg, n_requests=load)[1]
        for load in cfg.loads
    }


def run_fusion_comparison(
    cfg: ServeBenchConfig, n_requests: int, fusion: bool
):
    """One contended-pool run (single device, ``n_requests`` tenants)
    with cross-tenant fusion on or off."""
    workload = make_workload(
        WorkloadConfig(
            n_requests=n_requests,
            seed=cfg.seed,
            budget_scale=cfg.budget_scale,
            deadline_s=None,
        )
    )
    service = SearchService(
        n_devices=1,
        max_active=cfg.max_active,
        seed=cfg.seed,
        enforce_deadlines=False,
        fusion=fusion,
    )
    service.submit_all(workload)
    records = service.run()
    return records, service.report()


def run_fusion_sweep(cfg: ServeBenchConfig, loads=(8, 16, 32)):
    """Tenant count -> (unfused report, fused report) on one device."""
    return {
        n: (
            run_fusion_comparison(cfg, n, fusion=False),
            run_fusion_comparison(cfg, n, fusion=True),
        )
        for n in loads
    }


def render_fusion_sweep(results) -> str:
    from repro.util.tables import format_series

    loads = sorted(results)
    rows = {
        "p50 unfused (ms)": [],
        "p50 fused (ms)": [],
        "p50 win": [],
        "launches unfused": [],
        "launches fused": [],
        "tenants/launch": [],
    }
    for n in loads:
        (_, plain), (_, fused) = results[n]
        rows["p50 unfused (ms)"].append(
            f"{plain.p50_latency_s * 1e3:.2f}"
        )
        rows["p50 fused (ms)"].append(f"{fused.p50_latency_s * 1e3:.2f}")
        rows["p50 win"].append(
            f"{(1 - fused.p50_latency_s / plain.p50_latency_s) * 100:+.1f}%"
        )
        rows["launches unfused"].append(str(plain.kernel_launches))
        rows["launches fused"].append(str(fused.kernel_launches))
        rows["tenants/launch"].append(
            f"{fused.mean_tenants_per_launch:.1f}"
        )
    return format_series(
        "concurrent tenants",
        loads,
        rows,
        title="cross-tenant fusion on a contended pool (1 device)",
    )


def render_sweep(reports) -> str:
    from repro.util.tables import format_series

    loads = sorted(reports)
    return format_series(
        "offered load",
        loads,
        {
            "requests/s": [
                f"{reports[n].requests_per_s:.1f}" for n in loads
            ],
            "p50 latency (ms)": [
                f"{reports[n].p50_latency_s * 1e3:.2f}" for n in loads
            ],
            "p95 latency (ms)": [
                f"{reports[n].p95_latency_s * 1e3:.2f}" for n in loads
            ],
            "missed": [str(reports[n].missed) for n in loads],
        },
        title="serving load sweep (mixed workload, shared 4-GPU pool)",
    )


def test_serve_64_deterministic_no_misses(run_once):
    cfg = ServeBenchConfig.for_tier()
    records, report = run_once(run_concurrent, cfg)
    again, _ = run_concurrent(cfg)
    assert fingerprint(records) == fingerprint(again)
    assert report.completed == cfg.n_requests
    assert report.missed == 0
    assert report.rejected == 0


def test_serve_speedup_vs_serial_baseline(run_once):
    cfg = ServeBenchConfig.for_tier()

    def compare():
        _, concurrent = run_concurrent(cfg)
        _, serial = run_serial_baseline(cfg)
        return concurrent, serial

    concurrent, serial = run_once(compare)
    print()
    print("concurrent (4 devices, 64 active slots):")
    print(concurrent.render())
    print()
    print("serial baseline (1 device, 1 active slot):")
    print(serial.render())
    assert concurrent.completed == serial.completed == cfg.n_requests
    assert concurrent.missed == 0
    speedup = concurrent.requests_per_s / serial.requests_per_s
    print(f"\nspeedup: {speedup:.2f}x requests/s")
    assert speedup >= 2.0


def test_serve_fusion_p50_win_on_contended_pool(run_once):
    """The fusion tentpole's serving claim: at 8+ concurrent tenants
    on a contended single-device pool, fused launches cut p50 latency
    (launch + readback latency paid once per tick, not once per game)
    while returning bit-identical per-request results."""
    cfg = ServeBenchConfig.for_tier()

    def compare():
        return run_fusion_sweep(cfg, loads=(8, 16, 32))

    def results_only(records):
        # Latency is exactly what fusion improves; what must not
        # change is every request's search outcome.
        return [
            (rid, status, move, sims)
            for rid, status, _, move, sims in fingerprint(records)
        ]

    results = run_once(compare)
    print()
    print(render_fusion_sweep(results))
    for n, ((plain_recs, plain), (fused_recs, fused)) in (
        results.items()
    ):
        assert results_only(fused_recs) == results_only(plain_recs)
        assert fused.kernel_launches < plain.kernel_launches
        assert fused.fused_launches > 0
        assert fused.p50_latency_s < plain.p50_latency_s


def test_serve_load_sweep(run_once):
    cfg = ServeBenchConfig.for_tier()
    reports = run_once(run_load_sweep, cfg)
    print()
    print(render_sweep(reports))
    assert set(reports) == set(cfg.loads)
    for report in reports.values():
        assert report.completed + report.missed + report.rejected == (
            report.offered
        )
        assert report.p95_latency_s >= report.p50_latency_s


def test_cluster_throughput_scales_with_shards(run_once):
    cfg = ClusterBenchConfig.for_tier()
    reports = run_once(run_scaling_sweep, cfg)
    print()
    print(render_scaling_sweep(reports))
    counts = sorted(reports)
    for report in reports.values():
        assert report.completed == cfg.n_requests
    if 4 in reports:
        scaling = (
            reports[4].requests_per_s / reports[1].requests_per_s
        )
        assert scaling >= 3.0
    # More shards never hurts throughput across the sweep.
    assert (
        reports[counts[-1]].requests_per_s
        >= reports[counts[0]].requests_per_s
    )


def test_cluster_cache_collapses_skewed_p50(run_once):
    cfg = ClusterBenchConfig.for_tier()
    off, on = run_once(run_skew_comparison, cfg)
    print()
    print(render_skew_comparison(off, on))
    assert off.completed == on.completed == cfg.n_requests
    assert on.cache_hit_rate > 0
    # The measured collapse (>= 2x at the default tier) is recorded
    # in REPORT_cluster.md; keep slack here for the quick tier.
    assert on.p50_latency_s * 1.5 <= off.p50_latency_s


def test_cluster_shard_kill_recovers_exactly_once(run_once):
    cfg = ClusterBenchConfig.for_tier()
    records, report = run_once(run_shard_kill, cfg)
    assert report.completed == cfg.n_requests
    assert report.shard_crashes == 1
    assert report.shard_recoveries == 1
    assert report.mean_mttr_s > 0


def test_storm_interactive_slo_defended_vs_undefended(run_once):
    """The overload tentpole's headline: under a 4x flash crowd the
    defense ladder keeps the interactive SLO while the undefended
    node collapses -- and every request ends in an explicit
    terminal outcome either way."""
    cfg = StormBenchConfig.for_tier()

    def compare():
        return run_storm_defended(cfg), run_storm_undefended(cfg)

    defended, undefended = run_once(compare)
    print()
    print(render_storm_comparison(defended, undefended))
    assert defended.attainment("interactive") >= 0.95
    assert undefended.attainment("interactive") < 0.50
    for outcome in (defended, undefended):
        assert len(outcome.records) == len(outcome.requests)
        for stats in outcome.per_class.values():
            assert stats.offered == (
                stats.met + stats.degraded + stats.shed
                + stats.rejected + stats.missed
            )
    # The ladder protects interactive by shedding lower classes, not
    # by degrading or dropping interactive work.
    interactive = defended.per_class["interactive"]
    assert interactive.shed == 0
    assert defended.report.shed > 0
    assert defended.report.peak_devices > cfg.n_devices


def test_storm_replay_bit_identical(run_once):
    """Identical seeds give identical arrivals and identical
    per-request outcomes across two full storm replays."""
    cfg = StormBenchConfig.for_tier()

    def replay():
        return run_storm_defended(cfg), run_storm_defended(cfg)

    first, second = run_once(replay)
    assert storm_fingerprint(first) == storm_fingerprint(second)


def test_storm_cluster_shard_crash_exactly_once(run_once):
    """A shard crash mid-storm is recovered from its journal; no
    request is lost and none is served twice."""
    cfg = StormBenchConfig.for_tier()
    outcome = run_once(run_storm_cluster_kill, cfg)
    rids = [r.request.request_id for r in outcome.records]
    assert len(rids) == len(set(rids)), "request served twice"
    assert len(rids) == len(outcome.requests), "request lost"
    assert outcome.crashes == 1
    assert outcome.recoveries == 1
    assert outcome.mean_mttr_s > 0


def test_retry_storm_metastable_differential(run_once):
    """The closed-loop tentpole's headline: with retrying clients the
    undefended node stays trapped after the crowd clears, while the
    defended stack recovers post-crowd interactive attainment -- and
    the base load alone is provably healthy, so the trap is
    metastability, not plain overload."""
    cfg = RetryStormBenchConfig.for_tier()

    def compare():
        return (
            run_retry_storm_healthy(cfg),
            run_retry_storm_undefended(cfg),
            run_retry_storm_defended(cfg),
        )

    healthy, undefended, defended = run_once(compare)
    clear_s = cfg.clear_s() + cfg.settle_s
    print()
    print(
        render_retry_storm(healthy, undefended, defended, clear_s)
    )
    # The healthy equilibrium exists: base load alone meets every SLO
    # and generates no retries.
    assert healthy.attainment("interactive") >= 0.99
    assert healthy.report.retries_offered == 0
    assert not healthy.metastability.trapped
    # Undefended: the trigger is gone but the bad equilibrium
    # remains -- sustained trapped bins, goodput pinned below
    # offered, fresh post-crowd interactive work still failing.
    assert undefended.metastability.trapped
    assert undefended.report.retries_offered > 1000
    assert post_crowd_attainment(undefended.records, clear_s) < 0.50
    # Defended: same trace, same clients -- the budget + breakers +
    # throttle collapse the retry flood and the node escapes.
    assert not defended.metastability.trapped
    assert post_crowd_attainment(defended.records, clear_s) >= 0.95
    assert defended.report.retries_offered < (
        undefended.report.retries_offered // 4
    )
    # Each defense layer demonstrably engaged.
    assert defended.report.budget_rejected > 0
    assert defended.report.breaker_opens > 0
    assert defended.report.client_suppressed_breaker > 0
    assert defended.report.client_suppressed_throttle > 0
    for outcome in (healthy, undefended, defended):
        for stats in outcome.per_class.values():
            assert stats.offered == (
                stats.met + stats.degraded + stats.shed
                + stats.rejected + stats.missed
            )


def test_retry_storm_replay_bit_identical(run_once):
    """Closed-loop storms -- retries, breakers, jitter and all --
    replay bit-identically from one seed, on both sides of the
    differential."""
    cfg = RetryStormBenchConfig.for_tier()

    def replay():
        return (
            run_retry_storm_undefended(cfg),
            run_retry_storm_undefended(cfg),
            run_retry_storm_defended(cfg),
            run_retry_storm_defended(cfg),
        )

    u1, u2, d1, d2 = run_once(replay)
    assert storm_fingerprint(u1) == storm_fingerprint(u2)
    assert storm_fingerprint(d1) == storm_fingerprint(d2)
    assert storm_fingerprint(u1) != storm_fingerprint(d1)


def test_retry_storm_hedged_cluster_crash_exactly_once(run_once):
    """Hedged backups compose with mid-storm crash recovery: every
    request ends in exactly one explicit terminal outcome (the
    run_cluster_storm harness asserts explicit outcomes and each
    shard asserts its leases drained)."""
    cfg = RetryStormBenchConfig.for_tier()
    outcome = run_once(run_retry_storm_hedged_kill, cfg)
    rids = [r.request.request_id for r in outcome.records]
    assert len(rids) == len(set(rids)), "request served twice"
    assert len(rids) == len(outcome.requests), "request lost"
    assert outcome.crashes == 1
    assert outcome.recoveries == 1
    assert sum(r.hedges_fired for r in outcome.reports) > 0


def _retry_storm_main(smoke: bool) -> int:  # pragma: no cover
    cfg = RetryStormBenchConfig.for_tier("quick" if smoke else None)
    healthy = run_retry_storm_healthy(cfg)
    undefended = run_retry_storm_undefended(cfg)
    defended = run_retry_storm_defended(cfg)
    clear_s = cfg.clear_s() + cfg.settle_s
    print(render_retry_storm(healthy, undefended, defended, clear_s))
    if healthy.attainment("interactive") < 0.99:
        print("FAIL: base load alone is not healthy")
        return 1
    if not undefended.metastability.trapped:
        print(
            "FAIL: undefended node is not metastably trapped -- "
            "the storm is not igniting"
        )
        return 1
    u_pc = post_crowd_attainment(undefended.records, clear_s)
    if u_pc >= 0.50:
        print(
            f"FAIL: undefended post-crowd interactive {u_pc:.1%} "
            f">= 50%"
        )
        return 1
    if defended.metastability.trapped:
        print("FAIL: defended node is still trapped post-crowd")
        return 1
    d_pc = post_crowd_attainment(defended.records, clear_s)
    if d_pc < 0.95:
        print(
            f"FAIL: defended post-crowd interactive {d_pc:.1%} "
            f"< 95%"
        )
        return 1
    replay = run_retry_storm_undefended(cfg)
    if storm_fingerprint(replay) != storm_fingerprint(undefended):
        print("FAIL: retry storm replay is not bit-identical")
        return 1
    kill = run_retry_storm_hedged_kill(cfg)
    rids = [r.request.request_id for r in kill.records]
    if len(rids) != len(set(rids)) or len(rids) != len(kill.requests):
        print("FAIL: hedged shard crash lost or duplicated requests")
        return 1
    if kill.crashes != 1 or kill.recoveries != 1:
        print(
            f"FAIL: expected one crash+recovery, got "
            f"{kill.crashes}/{kill.recoveries}"
        )
        return 1
    hedges = sum(r.hedges_fired for r in kill.reports)
    print(
        f"hedged cluster storm: {len(kill.records)} requests, "
        f"{hedges} hedges fired, {kill.crashes} crash, "
        f"MTTR {kill.mean_mttr_s:.4f}s"
    )
    if smoke:
        print(
            f"smoke OK: post-crowd interactive {d_pc:.0%} defended "
            f"vs {u_pc:.0%} undefended (trapped "
            f"{undefended.metastability.trapped_bins} bins); replay "
            f"bit-identical; hedged mid-storm shard crash recovered "
            f"exactly-once"
        )
    return 0


def _storm_main(smoke: bool) -> int:  # pragma: no cover
    cfg = StormBenchConfig.for_tier("quick" if smoke else None)
    defended = run_storm_defended(cfg)
    undefended = run_storm_undefended(cfg)
    print(render_storm_comparison(defended, undefended))
    d_int = defended.attainment("interactive")
    u_int = undefended.attainment("interactive")
    if d_int < 0.95:
        print(
            f"FAIL: defended interactive attainment "
            f"{d_int:.1%} < 95%"
        )
        return 1
    if u_int >= 0.50:
        print(
            f"FAIL: undefended interactive attainment "
            f"{u_int:.1%} >= 50% -- storm is not overloading"
        )
        return 1
    replay = run_storm_defended(cfg)
    if storm_fingerprint(replay) != storm_fingerprint(defended):
        print("FAIL: storm replay is not bit-identical")
        return 1
    kill = run_storm_cluster_kill(cfg)
    rids = [r.request.request_id for r in kill.records]
    if len(rids) != len(set(rids)) or len(rids) != len(kill.requests):
        print("FAIL: shard crash lost or duplicated requests")
        return 1
    if kill.crashes != 1 or kill.recoveries != 1:
        print(
            f"FAIL: expected one crash+recovery, got "
            f"{kill.crashes}/{kill.recoveries}"
        )
        return 1
    print(
        f"cluster storm: {len(kill.records)} requests over "
        f"{kill.shard_counts} shards, {kill.crashes} crash, "
        f"MTTR {kill.mean_mttr_s:.4f}s"
    )
    if smoke:
        print(
            f"smoke OK: interactive attainment {d_int:.0%} defended "
            f"vs {u_int:.0%} undefended; replay bit-identical; "
            f"mid-storm shard crash recovered exactly-once"
        )
    return 0


def _cluster_main(smoke: bool) -> int:  # pragma: no cover
    cfg = ClusterBenchConfig.for_tier("quick" if smoke else None)
    reports = run_scaling_sweep(cfg)
    print(render_scaling_sweep(reports))
    scaling = reports[4].requests_per_s / reports[1].requests_per_s
    if scaling < 3.0:
        print(
            f"FAIL: 4-shard throughput scaling {scaling:.2f}x < 3x"
        )
        return 1
    print()
    off, on = run_skew_comparison(cfg)
    print(render_skew_comparison(off, on))
    if not on.cache_hit_rate > 0:
        print("FAIL: no cache hits under Zipf-skewed traffic")
        return 1
    collapse = off.p50_latency_s / on.p50_latency_s
    print()
    _, kill = run_shard_kill(cfg)
    print(
        f"shard kill: {kill.completed}/{kill.offered} completed, "
        f"{kill.shard_crashes} crash, "
        f"MTTR {kill.mean_mttr_s:.4f}s"
    )
    if kill.completed != cfg.n_requests:
        print("FAIL: shard kill lost requests")
        return 1
    if smoke:
        print(
            f"smoke OK: 4-shard scaling {scaling:.2f}x; cache hit "
            f"rate {on.cache_hit_rate:.0%} (p50 collapse "
            f"{collapse:.2f}x) under skew; shard kill recovered "
            f"exactly-once"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    if "--retry-storm" in sys.argv[1:]:
        sys.exit(
            _retry_storm_main(smoke="--smoke" in sys.argv[1:])
        )
    if "--storm" in sys.argv[1:]:
        sys.exit(_storm_main(smoke="--smoke" in sys.argv[1:]))
    if "--cluster" in sys.argv[1:]:
        sys.exit(_cluster_main(smoke="--smoke" in sys.argv[1:]))
    cfg = replace(ServeBenchConfig.for_tier(), loads=(1, 4, 16, 64, 256))
    _, concurrent = run_concurrent(cfg)
    _, serial = run_serial_baseline(cfg)
    print("concurrent:")
    print(concurrent.render())
    print("\nserial baseline:")
    print(serial.render())
    print(
        f"\nspeedup: "
        f"{concurrent.requests_per_s / serial.requests_per_s:.2f}x"
    )
    print()
    print(render_sweep(run_load_sweep(cfg)))
    print()
    print(render_fusion_sweep(run_fusion_sweep(cfg)))
