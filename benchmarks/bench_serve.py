"""Serving bench: batched multi-tenant search vs back-to-back searches.

The tentpole claim of the serving layer, measured end-to-end: a
64-request mixed workload (three games, six engine specs, varied
budgets) served concurrently over a shared 4-GPU pool must complete

* deterministically -- the same seed produces identical per-request
  results across runs,
* with zero deadline misses at the default deadline, and
* at >= 2x the requests/s of the same 64 searches run back-to-back on
  a single device.

A load sweep (offered loads 1..256) reports requests/s and p50/p95
latency at each point.  Run standalone with
``python benchmarks/bench_serve.py``; under pytest the quick tier
scales budgets down (REPRO_TIER=default restores the full budgets).
"""

from dataclasses import dataclass, replace

from repro.harness.common import resolve_tier
from repro.serve import SearchService, WorkloadConfig, make_workload


@dataclass(frozen=True)
class ServeBenchConfig:
    n_requests: int = 64
    loads: tuple[int, ...] = (1, 4, 16, 64, 256)
    budget_scale: float = 1.0
    n_devices: int = 4
    max_active: int = 64
    deadline_s: float = 2.0
    seed: int = 2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "ServeBenchConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return ServeBenchConfig(
                budget_scale=0.25, loads=(1, 16, 64, 256)
            )
        if tier == "full":
            return ServeBenchConfig(
                loads=(1, 4, 16, 64, 128, 256), budget_scale=2.0
            )
        return ServeBenchConfig()


def run_concurrent(cfg: ServeBenchConfig, n_requests: int | None = None):
    """Serve ``n_requests`` concurrently over the shared pool."""
    workload = make_workload(
        WorkloadConfig(
            n_requests=n_requests or cfg.n_requests,
            seed=cfg.seed,
            budget_scale=cfg.budget_scale,
            deadline_s=cfg.deadline_s,
        )
    )
    service = SearchService(
        n_devices=cfg.n_devices,
        max_active=cfg.max_active,
        seed=cfg.seed,
    )
    service.submit_all(workload)
    records = service.run()
    return records, service.report()


def run_serial_baseline(cfg: ServeBenchConfig):
    """The same workload, one request at a time on one device."""
    workload = make_workload(
        WorkloadConfig(
            n_requests=cfg.n_requests,
            seed=cfg.seed,
            budget_scale=cfg.budget_scale,
            deadline_s=None,
        )
    )
    service = SearchService(
        n_devices=1,
        max_active=1,
        seed=cfg.seed,
        enforce_deadlines=False,
    )
    service.submit_all(workload)
    records = service.run()
    return records, service.report()


def fingerprint(records):
    """Per-request identity of a run, for determinism checks."""
    return [
        (
            r.request.request_id,
            r.status,
            r.latency_s,
            None if r.result is None else r.result.move,
            None if r.result is None else r.result.simulations,
        )
        for r in records
    ]


def run_load_sweep(cfg: ServeBenchConfig):
    """Offered load -> ServiceReport, over ``cfg.loads``."""
    return {
        load: run_concurrent(cfg, n_requests=load)[1]
        for load in cfg.loads
    }


def run_fusion_comparison(
    cfg: ServeBenchConfig, n_requests: int, fusion: bool
):
    """One contended-pool run (single device, ``n_requests`` tenants)
    with cross-tenant fusion on or off."""
    workload = make_workload(
        WorkloadConfig(
            n_requests=n_requests,
            seed=cfg.seed,
            budget_scale=cfg.budget_scale,
            deadline_s=None,
        )
    )
    service = SearchService(
        n_devices=1,
        max_active=cfg.max_active,
        seed=cfg.seed,
        enforce_deadlines=False,
        fusion=fusion,
    )
    service.submit_all(workload)
    records = service.run()
    return records, service.report()


def run_fusion_sweep(cfg: ServeBenchConfig, loads=(8, 16, 32)):
    """Tenant count -> (unfused report, fused report) on one device."""
    return {
        n: (
            run_fusion_comparison(cfg, n, fusion=False),
            run_fusion_comparison(cfg, n, fusion=True),
        )
        for n in loads
    }


def render_fusion_sweep(results) -> str:
    from repro.util.tables import format_series

    loads = sorted(results)
    rows = {
        "p50 unfused (ms)": [],
        "p50 fused (ms)": [],
        "p50 win": [],
        "launches unfused": [],
        "launches fused": [],
        "tenants/launch": [],
    }
    for n in loads:
        (_, plain), (_, fused) = results[n]
        rows["p50 unfused (ms)"].append(
            f"{plain.p50_latency_s * 1e3:.2f}"
        )
        rows["p50 fused (ms)"].append(f"{fused.p50_latency_s * 1e3:.2f}")
        rows["p50 win"].append(
            f"{(1 - fused.p50_latency_s / plain.p50_latency_s) * 100:+.1f}%"
        )
        rows["launches unfused"].append(str(plain.kernel_launches))
        rows["launches fused"].append(str(fused.kernel_launches))
        rows["tenants/launch"].append(
            f"{fused.mean_tenants_per_launch:.1f}"
        )
    return format_series(
        "concurrent tenants",
        loads,
        rows,
        title="cross-tenant fusion on a contended pool (1 device)",
    )


def render_sweep(reports) -> str:
    from repro.util.tables import format_series

    loads = sorted(reports)
    return format_series(
        "offered load",
        loads,
        {
            "requests/s": [
                f"{reports[n].requests_per_s:.1f}" for n in loads
            ],
            "p50 latency (ms)": [
                f"{reports[n].p50_latency_s * 1e3:.2f}" for n in loads
            ],
            "p95 latency (ms)": [
                f"{reports[n].p95_latency_s * 1e3:.2f}" for n in loads
            ],
            "missed": [str(reports[n].missed) for n in loads],
        },
        title="serving load sweep (mixed workload, shared 4-GPU pool)",
    )


def test_serve_64_deterministic_no_misses(run_once):
    cfg = ServeBenchConfig.for_tier()
    records, report = run_once(run_concurrent, cfg)
    again, _ = run_concurrent(cfg)
    assert fingerprint(records) == fingerprint(again)
    assert report.completed == cfg.n_requests
    assert report.missed == 0
    assert report.rejected == 0


def test_serve_speedup_vs_serial_baseline(run_once):
    cfg = ServeBenchConfig.for_tier()

    def compare():
        _, concurrent = run_concurrent(cfg)
        _, serial = run_serial_baseline(cfg)
        return concurrent, serial

    concurrent, serial = run_once(compare)
    print()
    print("concurrent (4 devices, 64 active slots):")
    print(concurrent.render())
    print()
    print("serial baseline (1 device, 1 active slot):")
    print(serial.render())
    assert concurrent.completed == serial.completed == cfg.n_requests
    assert concurrent.missed == 0
    speedup = concurrent.requests_per_s / serial.requests_per_s
    print(f"\nspeedup: {speedup:.2f}x requests/s")
    assert speedup >= 2.0


def test_serve_fusion_p50_win_on_contended_pool(run_once):
    """The fusion tentpole's serving claim: at 8+ concurrent tenants
    on a contended single-device pool, fused launches cut p50 latency
    (launch + readback latency paid once per tick, not once per game)
    while returning bit-identical per-request results."""
    cfg = ServeBenchConfig.for_tier()

    def compare():
        return run_fusion_sweep(cfg, loads=(8, 16, 32))

    def results_only(records):
        # Latency is exactly what fusion improves; what must not
        # change is every request's search outcome.
        return [
            (rid, status, move, sims)
            for rid, status, _, move, sims in fingerprint(records)
        ]

    results = run_once(compare)
    print()
    print(render_fusion_sweep(results))
    for n, ((plain_recs, plain), (fused_recs, fused)) in (
        results.items()
    ):
        assert results_only(fused_recs) == results_only(plain_recs)
        assert fused.kernel_launches < plain.kernel_launches
        assert fused.fused_launches > 0
        assert fused.p50_latency_s < plain.p50_latency_s


def test_serve_load_sweep(run_once):
    cfg = ServeBenchConfig.for_tier()
    reports = run_once(run_load_sweep, cfg)
    print()
    print(render_sweep(reports))
    assert set(reports) == set(cfg.loads)
    for report in reports.values():
        assert report.completed + report.missed + report.rejected == (
            report.offered
        )
        assert report.p95_latency_s >= report.p50_latency_s


if __name__ == "__main__":  # pragma: no cover
    cfg = replace(ServeBenchConfig.for_tier(), loads=(1, 4, 16, 64, 256))
    _, concurrent = run_concurrent(cfg)
    _, serial = run_serial_baseline(cfg)
    print("concurrent:")
    print(concurrent.render())
    print("\nserial baseline:")
    print(serial.render())
    print(
        f"\nspeedup: "
        f"{concurrent.requests_per_s / serial.requests_per_s:.2f}x"
    )
    print()
    print(render_sweep(run_load_sweep(cfg)))
    print()
    print(render_fusion_sweep(run_fusion_sweep(cfg)))
