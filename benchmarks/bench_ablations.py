"""Ablation benches: block size, sequential part, vote policy, UCB C."""

from repro.harness.ablations import (
    BlockSizeConfig,
    UcbConfig,
    VotePolicyConfig,
    run_block_size_ablation,
    run_divergence_ablation,
    run_seq_part_ablation,
    run_ucb_ablation,
    run_vote_policy_ablation,
)


def test_ablation_block_size(run_once):
    cfg = BlockSizeConfig.for_tier()
    result = run_once(run_block_size_ablation, cfg)
    print()
    print(result.render())
    for ratio in result.win_ratio.values():
        assert 0.0 <= ratio <= 1.0


def test_ablation_sequential_part(run_once):
    result = run_once(run_seq_part_ablation)
    print()
    print(result.render())
    # The serial share must grow with the number of trees until the
    # kernel waves grow proportionally too (the paper's Amdahl term).
    assert result.seq_fraction[0] < result.seq_fraction[3]
    assert all(0.0 <= f < 1.0 for f in result.seq_fraction)


def test_ablation_divergence(run_once):
    result = run_once(run_divergence_ablation)
    print()
    print(result.render())
    assert all(0.0 < e <= 1.0 for e in result.mean_efficiency)
    # Opening launches are the most uniform (longest common playouts).
    assert result.mean_efficiency[0] >= result.mean_efficiency[-1] - 0.05


def test_ablation_vote_policy(run_once):
    cfg = VotePolicyConfig.for_tier()
    result = run_once(run_vote_policy_ablation, cfg)
    print()
    print(result.render())
    assert set(result.win_ratio) == set(cfg.policies)


def test_ablation_ucb_c(run_once):
    cfg = UcbConfig.for_tier()
    result = run_once(run_ucb_ablation, cfg)
    print()
    print(result.render())
    assert set(result.win_ratio) == set(cfg.c_values)
