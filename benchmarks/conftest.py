"""Benchmark-suite configuration.

Every figure bench runs its experiment once (rounds=1) -- these are
minutes-scale end-to-end reproductions, not microbenchmarks -- and
prints the rendered table so the run log doubles as the figure output.
Set ``REPRO_TIER=default`` (or ``full``) for higher-fidelity sweeps;
benches default to the quick tier.
"""

import os

import pytest


@pytest.fixture(autouse=True)
def _default_quick_tier(monkeypatch):
    if "REPRO_TIER" not in os.environ:
        monkeypatch.setenv("REPRO_TIER", "quick")


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, iterations=1, rounds=1
        )

    return _run
