"""Microbenchmarks of the substrates the figures stand on.

These use pytest-benchmark's statistics properly (many rounds): batched
playout throughput, the scalar playout fast path, tree operations (on
both the pointer-tree and arena backends), the RNG, and simulated-MPI
collectives.

Run directly (``python benchmarks/bench_micro.py [--quick]``) it
compares block-parallel iterations/sec on the ``node`` vs ``arena``
tree backends and exits non-zero if the arena is not faster -- the CI
benchmark-smoke gate.
"""

import argparse
import sys
import time

import numpy as np

from repro.core.backend import make_forest, make_tree
from repro.core.tree import SearchTree
from repro.games import BatchReversi, Reversi, make_game
from repro.games.batch import run_playouts_tracked, select_random_bit
from repro.mpi import MpiCluster, TSUBAME_IB
from repro.rng import BatchXorShift128Plus, XorShift64Star


def test_micro_batch_playout_1024(benchmark):
    game = Reversi()
    bg = BatchReversi()
    state = game.initial_state()

    def run():
        rng = BatchXorShift128Plus(1024, 7)
        batch = bg.make_batch([state], 1024)
        return run_playouts_tracked(bg, batch, rng)

    tracked = benchmark.pedantic(run, iterations=1, rounds=3)
    assert tracked.winners.shape == (1024,)


def test_micro_scalar_playout(benchmark):
    game = Reversi()
    state = game.initial_state()
    rng = XorShift64Star(3)

    winner, plies = benchmark(game.playout, state, rng)
    assert winner in (-1, 0, 1)
    assert plies > 0


def test_micro_tree_iteration(benchmark):
    game = Reversi()

    def thousand_iterations():
        tree = SearchTree(
            game, game.initial_state(), XorShift64Star(5), 1.0
        )
        for _ in range(1000):
            node, _ = tree.select_expand()
            tree.backprop_winner(node, 1)
        return tree

    tree = benchmark.pedantic(
        thousand_iterations, iterations=1, rounds=3
    )
    assert tree.node_count == 1001


def test_micro_arena_tree_iteration(benchmark):
    game = Reversi()

    def thousand_iterations():
        tree = make_tree(
            "arena", game, game.initial_state(), XorShift64Star(5), 1.0
        )
        for _ in range(1000):
            node, _ = tree.select_expand()
            tree.backprop_winner(node, 1)
        return tree

    tree = benchmark.pedantic(
        thousand_iterations, iterations=1, rounds=3
    )
    assert tree.node_count == 1001


def test_micro_arena_forest_lockstep(benchmark):
    game = make_game("connect4")

    def lockstep_rounds():
        rngs = [XorShift64Star(b) for b in range(64)]
        forest = make_forest(
            "arena", game, game.initial_state(), rngs, 1.0
        )
        for _ in range(100):
            leaves, _ = forest.select_expand_all()
            for i, leaf in enumerate(leaves):
                forest.backprop_winner(i, leaf, 1)
        return forest

    forest = benchmark.pedantic(lockstep_rounds, iterations=1, rounds=3)
    assert forest.node_count() == 64 * 101


def test_micro_rng_batch(benchmark):
    rng = BatchXorShift128Plus(4096, 9)
    out = benchmark(rng.next_u64)
    assert out.shape == (4096,)


def test_micro_select_random_bit(benchmark):
    rng = BatchXorShift128Plus(4096, 9)
    masks = BatchXorShift128Plus(4096, 11).next_u64()

    out = benchmark(select_random_bit, masks, rng)
    assert out.shape == (4096,)


def test_micro_mpi_allreduce(benchmark):
    def allreduce_round():
        cluster = MpiCluster(16, TSUBAME_IB)
        values = [np.ones(65)] * 16
        return cluster.allreduce(values, op="sum")

    out = benchmark.pedantic(allreduce_round, iterations=1, rounds=5)
    assert float(out[0][0]) == 16.0


# --------------------------------------------------------------------
# Direct invocation: node-vs-arena backend comparison (CI smoke gate).
# --------------------------------------------------------------------


def bench_backends(args) -> int:
    """Time block-parallel search on both tree backends and report.

    Returns 0 when the arena backend is faster (iterations/sec) and
    produced bit-identical results, 1 otherwise.
    """
    from repro.core import make_engine
    from repro.util.profile import Profiler
    from repro.util.tables import format_table

    game = make_game(args.game)
    state = game.initial_state()
    spec = {
        "kind": "block",
        "blocks": args.blocks,
        "threads_per_block": args.tpb,
        "max_iterations": args.iterations,
    }
    runs = {}
    for backend in ("node", "arena"):
        engine = make_engine(dict(spec, backend=backend), game, args.seed)
        engine.profiler = prof = Profiler()
        t0 = time.perf_counter()
        result = engine.search(state, 1e9)
        wall = time.perf_counter() - t0
        runs[backend] = (result, result.iterations / wall, prof)

    (res_n, ips_n, prof_n), (res_a, ips_a, prof_a) = (
        runs["node"],
        runs["arena"],
    )
    identical = (
        res_n.move == res_a.move
        and res_n.stats == res_a.stats
        and res_n.iterations == res_a.iterations
        and res_n.simulations == res_a.simulations
    )
    rows = [
        (
            backend,
            f"{ips:.1f}",
            res.iterations,
            res.simulations,
            res.tree_nodes,
            res.move,
        )
        for backend, (res, ips, _) in runs.items()
    ]
    print(
        format_table(
            ("backend", "iters/s", "iters", "sims", "nodes", "move"),
            rows,
            title=(
                f"block-parallel {args.game} "
                f"{args.blocks}x{args.tpb}, seed {args.seed}"
            ),
        )
    )
    print(
        f"\nspeedup (arena/node): {ips_a / ips_n:.2f}x"
        f"   identical results: {identical}"
    )
    if args.profile:
        for backend, (_, _, prof) in runs.items():
            print()
            print(prof.render(title=f"{backend} phases"))
    if not identical:
        print("FAIL: backends disagree", file=sys.stderr)
        return 1
    if ips_a <= ips_n:
        print("FAIL: arena backend not faster than node", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="block-parallel node-vs-arena backend benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small shape for CI smoke (128 trees, 120 iterations)",
    )
    parser.add_argument("--game", default="tictactoe")
    parser.add_argument("--blocks", type=int, default=256)
    parser.add_argument("--tpb", type=int, default=1)
    parser.add_argument("--iterations", type=int, default=400)
    parser.add_argument("--seed", type=int, default=85_2011)
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase wall-clock breakdown for both backends",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.blocks = min(args.blocks, 128)
        args.iterations = min(args.iterations, 120)
    return bench_backends(args)


if __name__ == "__main__":
    sys.exit(main())
