"""Microbenchmarks of the substrates the figures stand on.

These use pytest-benchmark's statistics properly (many rounds): batched
playout throughput, the scalar playout fast path, tree operations, the
RNG, and simulated-MPI collectives.
"""

import numpy as np

from repro.core.tree import SearchTree
from repro.games import BatchReversi, Reversi
from repro.games.batch import run_playouts_tracked, select_random_bit
from repro.mpi import MpiCluster, TSUBAME_IB
from repro.rng import BatchXorShift128Plus, XorShift64Star


def test_micro_batch_playout_1024(benchmark):
    game = Reversi()
    bg = BatchReversi()
    state = game.initial_state()

    def run():
        rng = BatchXorShift128Plus(1024, 7)
        batch = bg.make_batch([state], 1024)
        return run_playouts_tracked(bg, batch, rng)

    tracked = benchmark.pedantic(run, iterations=1, rounds=3)
    assert tracked.winners.shape == (1024,)


def test_micro_scalar_playout(benchmark):
    game = Reversi()
    state = game.initial_state()
    rng = XorShift64Star(3)

    winner, plies = benchmark(game.playout, state, rng)
    assert winner in (-1, 0, 1)
    assert plies > 0


def test_micro_tree_iteration(benchmark):
    game = Reversi()

    def thousand_iterations():
        tree = SearchTree(
            game, game.initial_state(), XorShift64Star(5), 1.0
        )
        for _ in range(1000):
            node, _ = tree.select_expand()
            tree.backprop_winner(node, 1)
        return tree

    tree = benchmark.pedantic(
        thousand_iterations, iterations=1, rounds=3
    )
    assert tree.node_count == 1001


def test_micro_rng_batch(benchmark):
    rng = BatchXorShift128Plus(4096, 9)
    out = benchmark(rng.next_u64)
    assert out.shape == (4096,)


def test_micro_select_random_bit(benchmark):
    rng = BatchXorShift128Plus(4096, 9)
    masks = BatchXorShift128Plus(4096, 11).next_u64()

    out = benchmark(select_random_bit, masks, rng)
    assert out.shape == (4096,)


def test_micro_mpi_allreduce(benchmark):
    def allreduce_round():
        cluster = MpiCluster(16, TSUBAME_IB)
        values = [np.ones(65)] * 16
        return cluster.allreduce(values, op="sum")

    out = benchmark.pedantic(allreduce_round, iterations=1, rounds=5)
    assert float(out[0][0]) == 16.0
