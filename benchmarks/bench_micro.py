"""Microbenchmarks of the substrates the figures stand on.

These use pytest-benchmark's statistics properly (many rounds): batched
playout throughput, the scalar playout fast path, tree operations (on
both the pointer-tree and arena backends), the RNG, and simulated-MPI
collectives.

Run directly (``python benchmarks/bench_micro.py [--quick]``) it
compares block-parallel iterations/sec on the ``node`` vs ``arena``
tree backends and exits non-zero if the arena is not faster -- the CI
benchmark-smoke gate.  ``--compare executors`` times the full backend
x playout-executor grid (gate: compiled beats NumPy, bit-identically).
``--compare fused`` gates the combined serving stack -- fused
cross-tenant launches + compiled playouts must clear ``--threshold``
(default 5x) round throughput over the unfused NumPy baseline with
bit-identical per-lane answers.
"""

import argparse
import sys
import time

import numpy as np

from repro.core.backend import make_forest, make_tree
from repro.core.tree import SearchTree
from repro.games import BatchReversi, Reversi, make_game
from repro.games.batch import run_playouts_tracked, select_random_bit
from repro.mpi import MpiCluster, TSUBAME_IB
from repro.rng import BatchXorShift128Plus, XorShift64Star


def test_micro_batch_playout_1024(benchmark):
    game = Reversi()
    bg = BatchReversi()
    state = game.initial_state()

    def run():
        rng = BatchXorShift128Plus(1024, 7)
        batch = bg.make_batch([state], 1024)
        return run_playouts_tracked(bg, batch, rng)

    tracked = benchmark.pedantic(run, iterations=1, rounds=3)
    assert tracked.winners.shape == (1024,)


def test_micro_scalar_playout(benchmark):
    game = Reversi()
    state = game.initial_state()
    rng = XorShift64Star(3)

    winner, plies = benchmark(game.playout, state, rng)
    assert winner in (-1, 0, 1)
    assert plies > 0


def test_micro_tree_iteration(benchmark):
    game = Reversi()

    def thousand_iterations():
        tree = SearchTree(
            game, game.initial_state(), XorShift64Star(5), 1.0
        )
        for _ in range(1000):
            node, _ = tree.select_expand()
            tree.backprop_winner(node, 1)
        return tree

    tree = benchmark.pedantic(
        thousand_iterations, iterations=1, rounds=3
    )
    assert tree.node_count == 1001


def test_micro_arena_tree_iteration(benchmark):
    game = Reversi()

    def thousand_iterations():
        tree = make_tree(
            "arena", game, game.initial_state(), XorShift64Star(5), 1.0
        )
        for _ in range(1000):
            node, _ = tree.select_expand()
            tree.backprop_winner(node, 1)
        return tree

    tree = benchmark.pedantic(
        thousand_iterations, iterations=1, rounds=3
    )
    assert tree.node_count == 1001


def test_micro_arena_forest_lockstep(benchmark):
    game = make_game("connect4")

    def lockstep_rounds():
        rngs = [XorShift64Star(b) for b in range(64)]
        forest = make_forest(
            "arena", game, game.initial_state(), rngs, 1.0
        )
        for _ in range(100):
            leaves, _ = forest.select_expand_all()
            for i, leaf in enumerate(leaves):
                forest.backprop_winner(i, leaf, 1)
        return forest

    forest = benchmark.pedantic(lockstep_rounds, iterations=1, rounds=3)
    assert forest.node_count() == 64 * 101


def test_micro_rng_batch(benchmark):
    rng = BatchXorShift128Plus(4096, 9)
    out = benchmark(rng.next_u64)
    assert out.shape == (4096,)


def test_micro_select_random_bit(benchmark):
    rng = BatchXorShift128Plus(4096, 9)
    masks = BatchXorShift128Plus(4096, 11).next_u64()

    out = benchmark(select_random_bit, masks, rng)
    assert out.shape == (4096,)


def test_micro_mpi_allreduce(benchmark):
    def allreduce_round():
        cluster = MpiCluster(16, TSUBAME_IB)
        values = [np.ones(65)] * 16
        return cluster.allreduce(values, op="sum")

    out = benchmark.pedantic(allreduce_round, iterations=1, rounds=5)
    assert float(out[0][0]) == 16.0


# --------------------------------------------------------------------
# Direct invocation: node-vs-arena backend comparison (CI smoke gate).
# --------------------------------------------------------------------


def bench_backends(args) -> int:
    """Time block-parallel search on both tree backends and report.

    Returns 0 when the arena backend is faster (iterations/sec) and
    produced bit-identical results, 1 otherwise.
    """
    from repro.core import make_engine
    from repro.util.profile import Profiler
    from repro.util.tables import format_table

    game = make_game(args.game)
    state = game.initial_state()
    spec = {
        "kind": "block",
        "blocks": args.blocks,
        "threads_per_block": args.tpb,
        "max_iterations": args.iterations,
    }
    runs = {}
    for backend in ("node", "arena"):
        engine = make_engine(dict(spec, backend=backend), game, args.seed)
        engine.profiler = prof = Profiler()
        t0 = time.perf_counter()
        result = engine.search(state, 1e9)
        wall = time.perf_counter() - t0
        runs[backend] = (result, result.iterations / wall, prof)

    (res_n, ips_n, prof_n), (res_a, ips_a, prof_a) = (
        runs["node"],
        runs["arena"],
    )
    identical = (
        res_n.move == res_a.move
        and res_n.stats == res_a.stats
        and res_n.iterations == res_a.iterations
        and res_n.simulations == res_a.simulations
    )
    rows = [
        (
            backend,
            f"{ips:.1f}",
            res.iterations,
            res.simulations,
            res.tree_nodes,
            res.move,
        )
        for backend, (res, ips, _) in runs.items()
    ]
    print(
        format_table(
            ("backend", "iters/s", "iters", "sims", "nodes", "move"),
            rows,
            title=(
                f"block-parallel {args.game} "
                f"{args.blocks}x{args.tpb}, seed {args.seed}"
            ),
        )
    )
    print(
        f"\nspeedup (arena/node): {ips_a / ips_n:.2f}x"
        f"   identical results: {identical}"
    )
    if args.profile:
        for backend, (_, _, prof) in runs.items():
            print()
            print(prof.render(title=f"{backend} phases"))
    if not identical:
        print("FAIL: backends disagree", file=sys.stderr)
        return 1
    if ips_a <= ips_n:
        print("FAIL: arena backend not faster than node", file=sys.stderr)
        return 1
    return 0


def bench_executors(args) -> int:
    """Time block-parallel search across the full backend x executor
    grid.

    Returns 0 when the compiled executor clears ``args.threshold`` x
    the NumPy baseline's iterations/sec (same node backend) with every
    cell bit-identical, 1 otherwise.  With no C toolchain the compiled
    cells silently run NumPy, so the gate cannot pass -- CI only runs
    this mode on toolchain images.
    """
    from repro.compiled import compiled_available, unavailable_reason
    from repro.core import make_engine
    from repro.util.tables import format_table

    game = make_game(args.game)
    state = game.initial_state()
    spec = {
        "kind": "block",
        "blocks": args.blocks,
        "threads_per_block": args.tpb,
        "max_iterations": args.iterations,
    }
    if not compiled_available():
        print(
            f"note: compiled executor unavailable "
            f"({unavailable_reason()}); cells fall back to NumPy"
        )
    cells = [
        ("node", "numpy"),
        ("arena", "numpy"),
        ("node", "compiled"),
        ("arena", "compiled"),
    ]
    runs = {}
    for backend, playout in cells:
        engine = make_engine(
            dict(spec, backend=backend, playout=playout),
            game,
            args.seed,
        )
        t0 = time.perf_counter()
        result = engine.search(state, 1e9)
        wall = time.perf_counter() - t0
        runs[(backend, playout)] = (result, result.iterations / wall)

    base_res, base_ips = runs[("node", "numpy")]
    rows = []
    identical = True
    for backend, playout in cells:
        res, ips = runs[(backend, playout)]
        same = (
            res.move == base_res.move
            and res.stats == base_res.stats
            and res.iterations == base_res.iterations
            and res.simulations == base_res.simulations
        )
        identical = identical and same
        rows.append(
            (
                f"{backend}+{playout}",
                f"{ips:.1f}",
                f"{ips / base_ips:.2f}x",
                res.iterations,
                res.move,
                "yes" if same else "NO",
            )
        )
    print(
        format_table(
            ("stack", "iters/s", "speedup", "iters", "move", "identical"),
            rows,
            title=(
                f"backend x executor grid: block-parallel {args.game} "
                f"{args.blocks}x{args.tpb}, seed {args.seed}"
            ),
        )
    )
    gated = runs[("node", "compiled")][1] / base_ips
    print(
        f"\ncompiled speedup (node+compiled / node+numpy): "
        f"{gated:.2f}x   threshold: {args.threshold:.1f}x"
    )
    if not identical:
        print("FAIL: executor grid disagrees", file=sys.stderr)
        return 1
    if gated < args.threshold:
        print(
            f"FAIL: compiled executor below {args.threshold:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def bench_fused(args) -> int:
    """Gate the combined serving stack: fused launches + compiled
    playouts vs the unfused NumPy node baseline.

    Runs ``--rounds`` merged scheduler rounds of a fixed multi-tenant
    demand (``--lanes`` lanes per game per round -- the widths real
    ticks carry) through both stacks and compares wall-clock round
    throughput.  Returns 0 when the combined stack clears
    ``args.threshold`` (default 5x) with bit-identical per-lane
    answers, 1 otherwise.
    """
    from repro.compiled import compiled_available, unavailable_reason
    from repro.gpu import TESLA_C2050, DevicePool
    from repro.serve import FusedBatcher, LaneBatcher
    from repro.util.clock import Clock
    from repro.util.tables import format_table

    games = args.games.split(",")
    states = {g: make_game(g).initial_state() for g in games}
    lanes_per_round = args.lanes * len(games)

    if not compiled_available():
        print(
            f"note: compiled executor unavailable "
            f"({unavailable_reason()}); fused cell falls back to NumPy"
        )

    def run(cls, playout):
        pool = DevicePool((TESLA_C2050,) * 2, Clock())
        batcher = cls(pool, args.seed, playout=playout)
        per_round = []
        t0 = time.perf_counter()
        for _ in range(args.rounds):
            demand = {g: [states[g]] * args.lanes for g in games}
            answers, _ = batcher.execute_demand(demand)
            per_round.append(answers)
        wall = time.perf_counter() - t0
        return per_round, wall, batcher

    base_answers, base_wall, base = run(LaneBatcher, "numpy")
    fused_answers, fused_wall, fused = run(FusedBatcher, "compiled")
    identical = base_answers == fused_answers
    rows = [
        (
            "unfused+numpy",
            f"{args.rounds / base_wall:.1f}",
            f"{args.rounds * lanes_per_round / base_wall:,.0f}",
            "1.00x",
            base.launch_count,
        ),
        (
            "fused+compiled",
            f"{args.rounds / fused_wall:.1f}",
            f"{args.rounds * lanes_per_round / fused_wall:,.0f}",
            f"{base_wall / fused_wall:.2f}x",
            fused.launch_count,
        ),
    ]
    print(
        format_table(
            ("stack", "rounds/s", "lanes/s", "speedup", "launches"),
            rows,
            title=(
                f"combined serving stack: {args.rounds} rounds x "
                f"{args.lanes} lanes x {len(games)} games "
                f"({args.games}), seed {args.seed}"
            ),
        )
    )
    combined = base_wall / fused_wall
    print(
        f"\ncombined speedup (fused+compiled / unfused numpy): "
        f"{combined:.2f}x   threshold: {args.threshold:.1f}x"
        f"   identical answers: {identical}"
        f"   pad waste: {fused.pad_lanes} lanes"
    )
    if not identical:
        print("FAIL: fused+compiled answers differ", file=sys.stderr)
        return 1
    if combined < args.threshold:
        print(
            f"FAIL: combined stack below {args.threshold:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="block-parallel backend / executor benchmark gates"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small shape for CI smoke (128 trees, 120 iterations)",
    )
    parser.add_argument(
        "--compare",
        choices=("backends", "executors", "fused"),
        default="backends",
        help=(
            "backends: node vs arena (gate: arena faster); executors: "
            "backend x playout grid (gate: compiled beats numpy); "
            "fused: fused+compiled serving stack vs unfused numpy "
            "(gate: --threshold speedup, default 5x)"
        ),
    )
    parser.add_argument("--game", default="tictactoe")
    parser.add_argument("--blocks", type=int, default=256)
    parser.add_argument("--tpb", type=int, default=1)
    parser.add_argument("--iterations", type=int, default=400)
    parser.add_argument("--seed", type=int, default=85_2011)
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help=(
            "minimum gated speedup (default: 5.0 for --compare fused, "
            "1.5 for --compare executors)"
        ),
    )
    parser.add_argument(
        "--games",
        default="reversi,connect4,tictactoe",
        help="comma-separated games for --compare fused",
    )
    parser.add_argument(
        "--lanes",
        type=int,
        default=128,
        help="lanes per game per round for --compare fused",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=20,
        help="scheduler rounds for --compare fused",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase wall-clock breakdown for both backends",
    )
    args = parser.parse_args(argv)
    if args.threshold is None:
        args.threshold = 5.0 if args.compare == "fused" else 1.5
    if args.quick:
        args.blocks = min(args.blocks, 128)
        args.iterations = min(args.iterations, 120)
        args.rounds = min(args.rounds, 8)
    if args.compare == "fused":
        return bench_fused(args)
    if args.compare == "executors":
        return bench_executors(args)
    return bench_backends(args)


if __name__ == "__main__":
    sys.exit(main())
