"""Figure 5 bench: playouts/s vs GPU threads for all three schemes.

Regenerates the paper's throughput figure and asserts its shape:
throughput rises with threads; leaf(64) is the fastest raw simulator at
scale; block(32) pays the largest CPU-sequential tax.
"""

from repro.harness.fig5_speed import Fig5Config, run_fig5


def test_fig5_speed(run_once):
    cfg = Fig5Config.for_tier()
    result = run_once(run_fig5, cfg)
    print()
    print(result.render())

    threads = cfg.thread_counts
    leaf = result.series["leaf(bs=64)"]
    block32 = result.series["block(bs=32)"]

    # Throughput must grow strongly from the smallest to the largest
    # grid for every scheme (the rising left side of Figure 5).
    for series in result.series.values():
        assert series[-1] > 5 * series[0]

    # The block(32) CPU sequential part must show up as a deficit
    # against leaf(64) at the largest measured grid.
    assert block32[-1] < leaf[-1]

    # Calibration envelope: peak in the paper's decade (~1e5..1e6+
    # playouts/s once past a few hundred threads).
    if threads[-1] >= 1024:
        assert 1e5 < leaf[-1] < 5e6
